// Host-side per-element costs, measured on this machine (paper §4.1 /
// Fig 6). SwitchML-style systems burn CPU on (a) endianness conversion of
// the whole payload and (b) float<->fixed-point quantization; FPISA removes
// both (or, without the parser extension, leaves only (a)).
//
// The "scalar" variants model DPDK's per-element conversion APIs as the
// paper measured them (one element at a time, no SIMD); the vectorized
// variants show what hand-tuned SIMD could recover — the line-rate gap
// remains, which is the paper's point.
#pragma once

#include <cstdint>
#include <span>

namespace fpisa::host {

/// Byte-swap a buffer of N-bit elements, scalar (DPDK-per-element style).
/// Returns a checksum so the work cannot be optimized away.
std::uint64_t bswap16_scalar(std::span<std::uint16_t> data);
std::uint64_t bswap32_scalar(std::span<std::uint32_t> data);
std::uint64_t bswap64_scalar(std::span<std::uint64_t> data);

/// Compiler-vectorized variants.
std::uint64_t bswap16_vector(std::span<std::uint16_t> data);
std::uint64_t bswap32_vector(std::span<std::uint32_t> data);
std::uint64_t bswap64_vector(std::span<std::uint64_t> data);

/// SwitchML worker-side transforms: scale float -> int32 + byteswap, and
/// the inverse (byteswap + int32 -> float scale).
std::uint64_t quantize_block(std::span<const float> in,
                             std::span<std::uint32_t> out, float scale);
void dequantize_block(std::span<const std::uint32_t> in, std::span<float> out,
                      float inv_scale);

/// Vectorizable variants: model SwitchML's SIMD-optimized worker loops.
std::uint64_t quantize_block_vector(std::span<const float> in,
                                    std::span<std::uint32_t> out, float scale);
void dequantize_block_vector(std::span<const std::uint32_t> in,
                             std::span<float> out, float inv_scale);

struct MeasuredRates {
  // Elements per second, single core.
  double bswap16_scalar_eps = 0;
  double bswap32_scalar_eps = 0;
  double bswap64_scalar_eps = 0;
  double bswap16_vector_eps = 0;
  double bswap32_vector_eps = 0;
  double bswap64_vector_eps = 0;
  double quantize_eps = 0;           // float->int32 + bswap, per-element
  double dequantize_eps = 0;         // bswap + int32->float, per-element
  double quantize_vector_eps = 0;    // SIMD-optimized (SwitchML-style)
  double dequantize_vector_eps = 0;
  double memcpy_bytes_per_s = 0;
};

/// Measures everything on the current machine. `budget_ms` bounds the
/// wall-clock spent per primitive.
MeasuredRates measure_host_rates(double budget_ms = 60.0);

/// Elements/second needed to keep an `element_bits`-wide stream at
/// `line_gbps` (the Fig 6 "desired rate").
double desired_rate_eps(double line_gbps, int element_bits);

}  // namespace fpisa::host
