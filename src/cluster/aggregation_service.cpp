#include "cluster/aggregation_service.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/packed.h"

namespace fpisa::cluster {
namespace {

pisa::FpisaProgramOptions shard_program_options(const ClusterOptions& opts) {
  pisa::FpisaProgramOptions p;
  p.variant = opts.switch_config.ext.rsaw ? core::Variant::kFull
                                          : core::Variant::kApproximate;
  p.lanes = opts.lanes;
  p.slots = opts.slots_per_shard;
  p.num_workers = 32;  // bitmap width: any job with <= 32 workers fits
  return p;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// Independent per-(job, shard, pass) loss stream so results are
/// deterministic regardless of pool scheduling. Pass 0 reproduces the
/// pre-failover stream exactly; retry passes draw fresh schedules.
std::uint64_t task_seed(std::uint64_t base, std::uint64_t job_id, int shard,
                        std::uint64_t pass) {
  std::uint64_t state = base ^ (job_id * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(shard) << 32) ^
                        (pass * 0xc2b2ae3d27d4eb4fULL);
  return util::splitmix64(state);
}

}  // namespace

AggregationService::Shard::Shard(const ClusterOptions& opts)
    : sw(opts.switch_config, shard_program_options(opts)),
      slots(opts.slots_per_shard) {}

AggregationService::AggregationService(ClusterOptions opts)
    : opts_(opts),
      router_(opts.num_shards, opts.routing, opts.routing_salt),
      job_sched_(opts.qos.class_weights),
      admission_(opts.qos),
      qos_enabled_(opts.qos.enabled),
      health_(opts.num_shards, opts.failover.max_consecutive_failures),
      fault_fired_(opts.failover.faults.size(), false) {
  // num_shards <= 0 already rejected by the ShardRouter initializer.
  if (opts_.slots_per_job == 0) opts_.slots_per_job = 1;
  for (const ShardFault& f : opts_.failover.faults) {
    if (f.shard < 0 || f.shard >= opts_.num_shards) {
      throw std::invalid_argument("cluster: fault targets unknown shard");
    }
  }
  // The guarded ingress protocol (epoch stamps, checksums, wave replay) is
  // built on the batched wave datapath; the per-slot reference path stays a
  // faithful baseline of the ORIGINAL protocol instead of growing guard
  // branches.
  if (opts_.fault.enabled && !opts_.batched_collect) {
    throw std::invalid_argument(
        "cluster: fault injection requires batched_collect");
  }
  if (opts_.fault.enabled && opts_.fault.dead_worker >= 32) {
    throw std::invalid_argument(
        "cluster: fault.dead_worker exceeds the 32-bit worker bitmap");
  }
  shards_.reserve(static_cast<std::size_t>(opts_.num_shards));
  for (int s = 0; s < opts_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(opts_));
  }
  init_metrics();
  // Resolve the dispatch mode once: kAuto picks per-shard workers when
  // there is real parallelism to win, inline otherwise (a single core or a
  // single shard gains nothing from the handoff). Results are identical
  // either way — only wall time differs.
  switch (opts_.dispatch) {
    case ClusterOptions::DispatchMode::kInline:
      inline_dispatch_ = true;
      break;
    case ClusterOptions::DispatchMode::kWorkers:
      inline_dispatch_ = false;
      break;
    case ClusterOptions::DispatchMode::kAuto:
      inline_dispatch_ = opts_.num_shards <= 1 ||
                         std::thread::hardware_concurrency() <= 1;
      break;
  }
  if (!inline_dispatch_) {
    workers_.reserve(static_cast<std::size_t>(opts_.num_shards));
    for (int s = 0; s < opts_.num_shards; ++s) {
      workers_.push_back(std::make_unique<ShardWorker>());
    }
    // Spawn after every mailbox exists: a worker never touches another
    // shard's state, but the vector itself must be complete first.
    for (int s = 0; s < opts_.num_shards; ++s) {
      workers_[static_cast<std::size_t>(s)]->thread =
          std::thread([this, s] { shard_worker_loop(s); });
    }
  }
  const int job_threads = opts_.job_runner_threads > 0
                              ? opts_.job_runner_threads
                              : std::max(2, opts_.num_shards);
  job_pool_.reserve(static_cast<std::size_t>(job_threads));
  for (int t = 0; t < job_threads; ++t) {
    job_pool_.emplace_back([this] { job_runner_loop(); });
  }
}

void AggregationService::init_metrics() {
  // One registration pass at construction; the hot path only ever touches
  // the returned handles. Instance labels keep concurrently-built services
  // (tests spin up dozens) from aliasing each other's series.
  static std::atomic<std::uint64_t> next_id{0};
  svc_id_ = std::to_string(next_id.fetch_add(1, std::memory_order_relaxed));
  auto& reg = telemetry::registry();
  const auto bounds = telemetry::MetricsRegistry::time_buckets();
  m_shard_phase_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string shard = std::to_string(s);
    m_shard_phase_[s][0] = &reg.histogram(
        "cluster_shard_phase_seconds",
        {{"svc", svc_id_}, {"shard", shard}, {"phase", "add"}}, bounds);
    m_shard_phase_[s][1] = &reg.histogram(
        "cluster_shard_phase_seconds",
        {{"svc", svc_id_}, {"shard", shard}, {"phase", "collect"}}, bounds);
  }
  m_queue_depth_ = &reg.gauge("cluster_job_queue_depth", {{"svc", svc_id_}});
  m_shard_deaths_ = &reg.counter("cluster_failover_shard_deaths_total",
                                 {{"svc", svc_id_}});
  m_rerouted_ = &reg.counter("cluster_failover_chunks_rerouted_total",
                             {{"svc", svc_id_}});
  m_retries_ =
      &reg.counter("cluster_failover_retries_total", {{"svc", svc_id_}});
  m_jobs_[0] = &reg.counter("cluster_jobs_total",
                            {{"svc", svc_id_}, {"outcome", "completed"}});
  m_jobs_[1] = &reg.counter("cluster_jobs_total",
                            {{"svc", svc_id_}, {"outcome", "failed"}});
  m_jobs_[2] = &reg.counter("cluster_jobs_total",
                            {{"svc", svc_id_}, {"outcome", "rejected"}});
  // QoS admission/scheduler series (registered even when QoS is off — a
  // flat zero series is how an operator confirms the limiter is idle).
  for (std::size_t c = 0; c < qos::kNumPriorities; ++c) {
    const char* cls = qos::priority_name(static_cast<qos::Priority>(c));
    m_qos_class_depth_[c] = &reg.gauge("qos_admission_queue_depth",
                                       {{"svc", svc_id_}, {"class", cls}});
    m_qos_admitted_[c] = &reg.counter("qos_jobs_admitted_total",
                                      {{"svc", svc_id_}, {"class", cls}});
    m_qos_picks_[c] = &reg.counter("qos_sched_picks_total",
                                   {{"svc", svc_id_}, {"class", cls}});
  }
  m_qos_rejects_[0] = &reg.counter(
      "qos_jobs_rejected_total", {{"svc", svc_id_}, {"reason", "rate_limit"}});
  m_qos_rejects_[1] = &reg.counter(
      "qos_jobs_rejected_total", {{"svc", svc_id_}, {"reason", "queue_full"}});
  m_qos_rejects_[2] = &reg.counter(
      "qos_jobs_rejected_total", {{"svc", svc_id_}, {"reason", "deadline"}});
  // Per-shard mailbox counters (PR 8's mailbox_stats surface) as gauges,
  // refreshed after every pass join under kWorkers dispatch.
  m_mailbox_.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string shard = std::to_string(s);
    m_mailbox_[s][0] = &reg.gauge("cluster_mailbox_enqueued",
                                  {{"svc", svc_id_}, {"shard", shard}});
    m_mailbox_[s][1] = &reg.gauge("cluster_mailbox_wakeups",
                                  {{"svc", svc_id_}, {"shard", shard}});
    m_mailbox_[s][2] = &reg.gauge("cluster_mailbox_spurious_wakeups",
                                  {{"svc", svc_id_}, {"shard", shard}});
  }
  // Fault-recovery events (wire-level rejections live on the switches'
  // own fpisa_switch_* counters; these are the fabric-level recoveries).
  m_fault_[0] =
      &reg.counter("cluster_fault_epoch_bumps_total", {{"svc", svc_id_}});
  m_fault_[1] = &reg.counter("cluster_fault_workers_declared_dead_total",
                             {{"svc", svc_id_}});
  m_fault_[2] =
      &reg.counter("cluster_fault_waves_replayed_total", {{"svc", svc_id_}});
  m_job_wall_ =
      &reg.histogram("cluster_job_wall_seconds", {{"svc", svc_id_}}, bounds);
}

void AggregationService::attach_trace(telemetry::Trace* trace,
                                      telemetry::Trace::SpanId parent) {
  // Parent first, then the trace pointer with release ordering: a job that
  // acquires the pointer is guaranteed to see the matching parent.
  trace_parent_.store(parent, std::memory_order_relaxed);
  trace_.store(trace, std::memory_order_release);
}

AggregationService::~AggregationService() {
  // Stop the job runners first (they feed the shard workers), draining any
  // still-queued submissions so their futures resolve; then poison each
  // shard mailbox with a stop ticket — the workers drain in FIFO order, so
  // nothing a runner posted is lost.
  {
    util::LockGuard lk(job_mu_);
    stopping_jobs_ = true;
  }
  job_cv_.notify_all();
  admission_cv_.notify_all();  // unblock any kBlock submitter immediately
  for (std::thread& t : job_pool_) t.join();
  for (auto& w : workers_) w->mailbox.push(PassTicket{nullptr, true});
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

/// One in-flight fan-out/join (see header). Lives on run_pass's stack;
/// shard workers reach it through their mailbox ticket and write only
/// their own cache-line-aligned slot.
struct AggregationService::PassContext {
  const std::vector<std::vector<std::size_t>>* parts = nullptr;
  const std::vector<SlotRange>* ranges = nullptr;
  std::span<const std::span<const float>> workers;
  std::span<float> out;
  JobParams params;
  std::uint64_t job_id = 0;
  std::uint64_t pass = 0;
  std::uint32_t dead_mask = 0;
  telemetry::Trace* trace = nullptr;
  telemetry::Trace::SpanId pass_span = telemetry::Trace::kNone;
  /// Per-shard result slot, one cache line (or whole lines) each: stats
  /// and error are written by exactly one worker and read only after the
  /// join — the fix for the old run_pass, where workers updated
  /// report.per_shard[s] and errors[s] on adjacent lines from N threads.
  struct alignas(64) ShardSlot {
    switchml::SessionStats stats{};
    std::exception_ptr error;
  };
  std::vector<ShardSlot> slots;
  std::atomic<int> pending{0};
};

void AggregationService::shard_worker_loop(int shard) {
  ShardMailbox<PassTicket>& mb =
      workers_[static_cast<std::size_t>(shard)]->mailbox;
  for (;;) {
    const PassTicket t = mb.pop_wait();
    if (t.stop) return;
    PassContext& ctx = *t.ctx;
    run_pass_task(ctx, shard);
    // Retire the ticket. The LAST shard of the pass rings the service-wide
    // doorbell — and touches NOTHING of ctx after its decrement: once
    // pending hits zero the joining frame (which owns ctx on its stack) is
    // free to return.
    if (ctx.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pass_epoch_.fetch_add(1, std::memory_order_release);
      pass_epoch_.notify_all();
    }
  }
}

void AggregationService::refresh_queue_gauges() {
  m_queue_depth_->set(static_cast<double>(job_sched_.size()));
  for (std::size_t c = 0; c < qos::kNumPriorities; ++c) {
    m_qos_class_depth_[c]->set(static_cast<double>(
        job_sched_.class_depth(static_cast<qos::Priority>(c))));
  }
}

void AggregationService::job_runner_loop() {
  for (;;) {
    QueuedJob qj;
    {
      util::UniqueLock lk(job_mu_);
      job_cv_.wait(lk, [this]() FPISA_REQUIRES(job_mu_) {
        return stopping_jobs_ || !job_sched_.empty();
      });
      if (job_sched_.empty()) return;  // stopping and drained
      qos::Priority cls = qos::Priority::kQuery;
      job_sched_.pop(qj, &cls);
      if (qos_enabled_) {
        admission_.on_dequeued(admission_.tenant(qj.tenant));
        m_qos_picks_[static_cast<std::size_t>(cls)]->inc();
      }
      refresh_queue_gauges();
    }
    // A dequeue frees this tenant's queue slot: wake any kBlock submitter.
    admission_cv_.notify_all();
    qj.task();  // exceptions land in the task's future
  }
}

// The declaration's RELEASE(job_mu_)/EXCLUDES(stats_mu_) pair carries the
// contract to call sites; the body releases job_mu_ through the aliased
// `lk`, which the static analysis cannot connect — the shared lock rank
// (kJobQueue == kStats) enforces it dynamically instead.
void AggregationService::reject_job(util::UniqueLock& lk,
                                    std::string_view tenant,
                                    qos::RejectReason reason)
    FPISA_NO_THREAD_SAFETY_ANALYSIS {
  // Release job_mu_ BEFORE booking: the SLO/outcome books live under
  // stats_mu_ and the two locks must never nest.
  lk.unlock();
  {
    util::LockGuard slk(stats_mu_);
    ++jobs_rejected_;
    // The tenant's own SLO book gets a jobs_rejected entry — never a
    // jobs_failed one: a rejected job ran no protocol (the PR 5
    // failed-vs-cumulative invariant, pinned by test_qos).
    tenant_account_locked(tenant).slo.record_rejected();
  }
  m_jobs_[2]->inc();
  m_qos_rejects_[static_cast<std::size_t>(reason)]->inc();
  throw qos::AdmissionRejectedError(std::string(tenant), reason);
}

qos::Priority AggregationService::admit_queued(
    util::UniqueLock& lk, std::string_view tenant) {
  if (!qos_enabled_) return qos::Priority::kQuery;  // single FIFO class
  qos::AdmissionControl::TenantState& st = admission_.tenant(tenant);
  const qos::TenantQosConfig cfg = st.cfg;
  const std::uint64_t deadline =
      admission_.now_ns() +
      static_cast<std::uint64_t>(std::max(cfg.block_deadline_s, 0.0) * 1e9);
  for (;;) {
    const auto probe = admission_.try_admit_queued(st, admission_.now_ns());
    if (probe.admitted) {
      m_qos_admitted_[static_cast<std::size_t>(cfg.priority)]->inc();
      return cfg.priority;
    }
    if (cfg.policy == qos::AdmissionPolicy::kReject) {
      reject_job(lk, tenant, probe.reason);
    }
    // kBlock: wait for queue space (runners notify on dequeue) or tokens,
    // no longer than the tenant's deadline. The wait is capped so clock
    // movement — virtual in tests, real in production — is re-checked
    // promptly even without a notify.
    const std::uint64_t now = admission_.now_ns();
    if (now >= deadline) reject_job(lk, tenant, qos::RejectReason::kDeadline);
    std::uint64_t wait_ns = deadline - now;
    if (probe.reason == qos::RejectReason::kRateLimited &&
        probe.retry_after_ns < wait_ns) {
      wait_ns = probe.retry_after_ns;
    }
    wait_ns = std::clamp<std::uint64_t>(wait_ns, 100'000, 5'000'000);
    admission_cv_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
    if (stopping_jobs_) {
      reject_job(lk, tenant, qos::RejectReason::kDeadline);
    }
  }
}

void AggregationService::admit_direct(std::string_view tenant) {
  if (!qos_enabled_) return;
  util::UniqueLock lk(job_mu_);
  qos::AdmissionControl::TenantState& st = admission_.tenant(tenant);
  const qos::TenantQosConfig cfg = st.cfg;
  const std::uint64_t deadline =
      admission_.now_ns() +
      static_cast<std::uint64_t>(std::max(cfg.block_deadline_s, 0.0) * 1e9);
  for (;;) {
    const auto probe = admission_.try_admit_direct(st, admission_.now_ns());
    if (probe.admitted) {
      m_qos_admitted_[static_cast<std::size_t>(cfg.priority)]->inc();
      return;
    }
    if (cfg.policy == qos::AdmissionPolicy::kReject) {
      reject_job(lk, tenant, probe.reason);
    }
    const std::uint64_t now = admission_.now_ns();
    if (now >= deadline) reject_job(lk, tenant, qos::RejectReason::kDeadline);
    std::uint64_t wait_ns = deadline - now;
    if (probe.retry_after_ns > 0 && probe.retry_after_ns < wait_ns) {
      wait_ns = probe.retry_after_ns;
    }
    wait_ns = std::clamp<std::uint64_t>(wait_ns, 100'000, 5'000'000);
    admission_cv_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
  }
}

std::future<JobReport> AggregationService::enqueue_job(
    std::string_view tenant, std::function<JobReport()> fn) {
  std::packaged_task<JobReport()> task(std::move(fn));
  std::future<JobReport> fut = task.get_future();
  {
    util::UniqueLock lk(job_mu_);
    // Admission (token bucket + queue bound) happens at submission, under
    // the same lock as the scheduler push; a rejection throws out of
    // submit() itself — the caller gets typed backpressure, not a future
    // that fails later.
    const qos::Priority cls = admit_queued(lk, tenant);
    job_sched_.push(cls, QueuedJob{std::move(task), std::string(tenant)});
    refresh_queue_gauges();
  }
  job_cv_.notify_one();
  return fut;
}

bool AggregationService::fire_kill_fault(int shard, FaultPhase phase,
                                         std::size_t wave) {
  if (opts_.failover.faults.empty()) return false;
  util::LockGuard lk(fault_mu_);
  for (std::size_t i = 0; i < opts_.failover.faults.size(); ++i) {
    const ShardFault& f = opts_.failover.faults[i];
    if (fault_fired_[i] || f.kind != FaultKind::kKill) continue;
    if (f.shard != shard || f.phase != phase) continue;
    if (phase != FaultPhase::kBeforeJob && f.wave != wave) continue;
    fault_fired_[i] = true;
    return true;
  }
  return false;
}

bool AggregationService::peek_kill_fault(int shard, FaultPhase phase,
                                         std::size_t wave) const {
  if (opts_.failover.faults.empty()) return false;
  util::LockGuard lk(fault_mu_);
  for (std::size_t i = 0; i < opts_.failover.faults.size(); ++i) {
    const ShardFault& f = opts_.failover.faults[i];
    if (fault_fired_[i] || f.kind != FaultKind::kKill) continue;
    if (f.shard != shard || f.phase != phase) continue;
    if (phase != FaultPhase::kBeforeJob && f.wave != wave) continue;
    return true;
  }
  return false;
}

double AggregationService::slowdown_ms(int shard) const {
  // opts_ is immutable after construction: no lock needed.
  double ms = 0.0;
  for (const ShardFault& f : opts_.failover.faults) {
    if (f.kind == FaultKind::kSlowdown && f.shard == shard) {
      ms += f.slowdown_ms;
    }
  }
  return ms;
}

bool AggregationService::queue_add(std::uint16_t slot, std::uint8_t worker,
                                   std::span<const std::uint32_t> values,
                                   const JobParams& params, util::Rng& rng,
                                   switchml::SessionStats& stats,
                                   PacketQueue& q) {
  // The loss schedule depends only on the task's rng stream, never on the
  // switch, so it is drawn here in the per-packet protocol's exact order;
  // every copy the switch would have received is queued in arrival order
  // and applied later in one add_batch (the dedup bitmap absorbs the
  // duplicates, exactly as it would packet by packet).
  bool delivered_before = false;
  for (int attempt = 0; attempt <= params.max_retransmits; ++attempt) {
    if (attempt > 0) ++stats.retransmissions;
    ++stats.packets_sent;

    if (rng.next_double() < params.loss_rate) {
      ++stats.packets_lost;
      continue;  // request lost: retransmit after "timeout"
    }
    if (delivered_before) ++stats.duplicates_absorbed;
    delivered_before = true;
    q.slots.push_back(slot);
    q.workers.push_back(worker);
    q.values.insert(q.values.end(), values.begin(), values.end());

    if (rng.next_double() < params.loss_rate) {
      ++stats.packets_lost;
      continue;  // ack lost: worker retransmits; switch-side bitmap dedups
    }
    return true;
  }
  return false;
}

void AggregationService::flush_wave(Shard& shard, PacketQueue& q) {
  if (!q.empty()) {
    util::LockGuard lk(shard.mu);
    shard.sw.add_batch(q.slots, q.workers, q.values);
  }
  q.clear();
}

bool AggregationService::queue_add_guarded(
    std::uint16_t slot, std::uint8_t worker,
    std::span<const std::uint32_t> values, std::uint32_t stamp,
    const JobParams& params, util::Rng& rng, switchml::SessionStats& stats,
    fault::FaultEngine& engine) {
  // Same loss schedule as queue_add, drawn from the same rng stream in the
  // same order; the difference is that every delivered copy routes through
  // the fault engine. A corrupted delivery is queued (the switch will
  // reject and count it) but does NOT count as delivered: no ack is drawn
  // and the retransmit loop keeps going, exactly as a worker timing out on
  // the missing ack would behave.
  bool delivered_before = false;
  for (int attempt = 0; attempt <= params.max_retransmits; ++attempt) {
    if (attempt > 0) ++stats.retransmissions;
    ++stats.packets_sent;

    if (rng.next_double() < params.loss_rate) {
      ++stats.packets_lost;
      continue;  // request lost: retransmit after "timeout"
    }
    if (!engine.deliver(slot, worker, stamp, values)) continue;  // corrupted
    if (delivered_before) ++stats.duplicates_absorbed;
    delivered_before = true;

    if (rng.next_double() < params.loss_rate) {
      ++stats.packets_lost;
      continue;  // ack lost: worker retransmits; switch-side bitmap dedups
    }
    return true;
  }
  return false;
}

void AggregationService::flush_wave_guarded(Shard& shard,
                                            switchml::SessionStats& stats,
                                            fault::FaultEngine& engine) {
  engine.shuffle_pending();
  if (engine.pending() != 0) {
    pisa::FpisaSwitch::GuardStats guard;
    {
      util::LockGuard lk(shard.mu);
      shard.sw.add_batch_guarded(engine.slots(), engine.workers(),
                                 engine.stamps(), engine.checksums(),
                                 engine.values(), guard);
    }
    stats.faults.corrupt_rejected += guard.corrupt_rejected;
    stats.faults.stale_dups_rejected += guard.stale_rejected;
  }
  engine.clear_pending();
}

void AggregationService::resync_shard_stamps(Shard& shard,
                                             const SlotRange& range,
                                             WaveScratch& scratch) {
  util::LockGuard lk(shard.mu);
  scratch.stamps.resize(range.size());
  for (std::size_t k = 0; k < range.size(); ++k) {
    scratch.stamps[k] =
        shard.sw.slot_stamp(static_cast<std::uint16_t>(range.lo + k));
  }
  scratch.mirror_generation = shard.sw.generation();
}

void AggregationService::recover_shard_wave(
    int shard_idx, Shard& shard, const SlotRange& range,
    const std::vector<std::size_t>& chunks,
    std::span<const std::span<const float>> workers, std::size_t base,
    std::size_t wave_end, std::size_t wave_index,
    switchml::SessionStats& stats, fault::FaultEngine& engine,
    std::uint32_t dead_mask, WaveScratch& scratch) {
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t n = workers.empty() ? 0 : workers.front().size();
  const std::size_t wave_n = wave_end - base;
  const int nw = static_cast<int>(workers.size());

  // State loss: while the switch generation disagrees with the mirror,
  // everything this wave added (including whatever the engine injected) is
  // gone. Re-encode the wave from the host-held gradients with fresh
  // stamps and apply it through one reliable guarded batch — the dedup
  // bitmap absorbs any packets that DID survive, so replay is idempotent.
  int replays = 0;
  for (;;) {
    bool mismatch;
    {
      util::LockGuard lk(shard.mu);
      mismatch = shard.sw.generation() != scratch.mirror_generation;
    }
    if (!mismatch) break;
    if (replays++ >= opts_.fault.max_wave_replays) {
      // Composes with shard failover: a switch that cannot hold state long
      // enough to replay one wave is as dead as one that drops every
      // packet.
      throw ShardDeadError(
          shard_idx, "cluster: switch state loss exceeded wave-replay budget");
    }
    resync_shard_stamps(shard, range, scratch);
    ++stats.faults.epoch_bumps;
    scratch.pkts.clear();
    scratch.replay_stamps.clear();
    scratch.replay_checksums.clear();
    for (std::size_t k = base; k < wave_end; ++k) {
      const std::size_t c = chunks[k];
      const auto slot = static_cast<std::uint16_t>(range.lo + (k - base));
      for (int w = 0; w < nw; ++w) {
        if (dead_mask & (1u << static_cast<unsigned>(w))) continue;
        if (engine.worker_silent(w, wave_index)) continue;
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          scratch.lane_buf[l] =
              i < n
                  ? core::fp32_bits(workers[static_cast<std::size_t>(w)][i])
                  : 0;
        }
        const std::uint32_t stamp = scratch.stamps[k - base];
        scratch.pkts.slots.push_back(slot);
        scratch.pkts.workers.push_back(static_cast<std::uint8_t>(w));
        scratch.pkts.values.insert(scratch.pkts.values.end(),
                                   scratch.lane_buf.begin(),
                                   scratch.lane_buf.end());
        scratch.replay_stamps.push_back(stamp);
        scratch.replay_checksums.push_back(pisa::fpisa_checksum(
            slot, static_cast<std::uint8_t>(w), stamp, scratch.lane_buf));
      }
    }
    if (!scratch.pkts.empty()) {
      pisa::FpisaSwitch::GuardStats guard;
      util::LockGuard lk(shard.mu);
      shard.sw.add_batch_guarded(scratch.pkts.slots, scratch.pkts.workers,
                                 scratch.replay_stamps,
                                 scratch.replay_checksums,
                                 scratch.pkts.values, guard);
      stats.faults.corrupt_rejected += guard.corrupt_rejected;
      stats.faults.stale_dups_rejected += guard.stale_rejected;
    }
    scratch.pkts.clear();
    ++stats.faults.waves_replayed;
  }

  // Wave deadline: a worker whose dedup bit is set in NO slot of the wave
  // contributed nothing — its data is never coming (a merely unlucky
  // worker reaches at least one slot; total per-worker loss is what the
  // retransmit budget already bounds). Declare the lowest such worker dead.
  std::uint32_t expected = 0;
  for (int w = 0; w < nw; ++w) {
    if (!(dead_mask & (1u << static_cast<unsigned>(w)))) {
      expected |= 1u << static_cast<unsigned>(w);
    }
  }
  scratch.bitmaps.assign(wave_n, 0);
  {
    util::LockGuard lk(shard.mu);
    shard.sw.read_batch(static_cast<std::uint16_t>(range.lo), wave_n,
                        {scratch.wave_values.data(), wave_n * lanes},
                        scratch.bitmaps);
  }
  std::uint32_t missing = expected;
  for (std::size_t k = 0; k < wave_n; ++k) {
    missing &= expected & ~scratch.bitmaps[k];
  }
  if (missing != 0) {
    throw fault::WorkerDeadError(std::countr_zero(missing), wave_index);
  }
}

void AggregationService::collect_wave(
    int shard_idx, Shard& shard, const SlotRange& range,
    const std::vector<std::size_t>& chunks, std::size_t base,
    std::size_t wave_end, std::span<float> result, const JobParams& params,
    util::Rng& rng, switchml::SessionStats& stats, WaveScratch& scratch) {
  // Draw every slot's read + reset loss schedule in the per-packet order
  // (the schedule depends only on the task's rng stream, never on the
  // switch); switchml::draw_collect_schedule is the single source of truth
  // for this protocol order across the session and cluster layers. The
  // pipelined loop draws the same schedule earlier (at encode time, after
  // the wave's add draws) and lands in apply_collect directly.
  const switchml::CollectSchedule sched = switchml::draw_collect_schedule(
      wave_end - base, params.loss_rate, params.max_retransmits, rng, stats);
  apply_collect(shard_idx, shard, range, chunks, base, wave_end, result,
                sched, scratch);
}

void AggregationService::apply_collect(
    int shard_idx, Shard& shard, const SlotRange& range,
    const std::vector<std::size_t>& chunks, std::size_t base,
    std::size_t wave_end, std::span<float> result,
    const switchml::CollectSchedule& sched, WaveScratch& scratch) {
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t n = result.size();
  const std::size_t wave_n = wave_end - base;

  // Apply the cleared prefix in one compiled-egress call under a single
  // mutex hold (values are read before the clear, exactly the per-slot
  // read-then-reset order; a failed slot and everything after it stay
  // untouched, as they would per-packet).
  {
    util::LockGuard lk(shard.mu);
    shard.sw.read_and_reset_batch(
        static_cast<std::uint16_t>(range.lo), sched.cleared,
        {scratch.wave_values.data(), sched.cleared * lanes});
    shard.sw.sim().account_packets(sched.delivered - sched.cleared);
  }
  if (sched.failure == 1) {
    throw ShardDeadError(shard_idx,
                         "cluster: read packet exceeded max_retransmits");
  }
  if (sched.failure == 2) {
    // A dirty slot would poison the range's next tenant via the dedup
    // bitmap — fail loudly instead of finishing with a hidden leak.
    throw ShardDeadError(shard_idx,
                         "cluster: reset packet exceeded max_retransmits");
  }

  for (std::size_t k = 0; k < wave_n; ++k) {
    const std::size_t c = chunks[base + k];
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t i = c * lanes + l;
      if (i < n) {
        result[i] = core::fp32_value(scratch.wave_values[k * lanes + l]);
      }
    }
  }
}

void AggregationService::scrub_range(Shard& shard, const SlotRange& range) {
  util::LockGuard lk(shard.mu);
  for (std::size_t s = range.lo; s < range.hi; ++s) {
    (void)shard.sw.read_and_reset(static_cast<std::uint16_t>(s));
  }
}

void AggregationService::run_shard_chunks(
    int shard_idx, Shard& shard, const SlotRange& range,
    const std::vector<std::size_t>& chunks,
    std::span<const std::span<const float>> workers, std::span<float> result,
    const JobParams& params, util::Rng& rng, switchml::SessionStats& stats,
    fault::FaultEngine* engine, std::uint32_t dead_mask,
    telemetry::Trace* trace, telemetry::Trace::SpanId parent) {
  telemetry::ScopedSpan shard_span(trace, "shard", parent);
  shard_span.annotate("shard", std::to_string(shard_idx));
  shard_span.annotate("chunks", std::to_string(chunks.size()));
  if (fire_kill_fault(shard_idx, FaultPhase::kBeforeJob, 0)) {
    throw ShardDeadError(shard_idx,
                         "cluster: shard killed before job (injected)");
  }
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t n = result.size();
  const int nw = static_cast<int>(workers.size());
  const std::size_t wave = range.size();
  if (wave == 0 && !chunks.empty()) {
    // Belt-and-braces: a task with chunks but no slot range would loop
    // forever below. run_job's liveness snapshot makes this unreachable;
    // fail loudly if that invariant ever breaks — as a logic_error, NOT a
    // ShardDeadError, so the failover machinery cannot misread an internal
    // bug as an organic shard death and silently "recover" from it.
    throw std::logic_error("cluster: shard task has no slot range");
  }
  const double straggle_ms = slowdown_ms(shard_idx);
  WaveScratch scratch;
  scratch.lane_buf.assign(lanes, 0);
  scratch.wave_values.assign(wave * lanes, 0);
  // Guarded protocol: seed the host-side stamp mirror from the switch so
  // every add this task sends carries the epoch the slot currently expects.
  if (engine != nullptr) resync_shard_stamps(shard, range, scratch);

  // Pipelined wave loop: pure-loss batched collect only. The guarded fault
  // protocol serializes by construction (wave N+1's epoch stamps come out
  // of wave N's collect — and replay recovery can resync them arbitrarily
  // — so its pipeline would drain every wave), and the per-slot collect
  // reference predates the batched schedule the pipeline pre-draws.
  if (opts_.pipeline_waves && opts_.batched_collect && engine == nullptr) {
    run_wave_pipeline(shard_idx, shard, range, chunks, workers, result,
                      params, rng, stats, dead_mask, trace, shard_span.id(),
                      scratch, straggle_ms);
    return;
  }
  using Clock = std::chrono::steady_clock;

  std::size_t wave_index = 0;
  for (std::size_t base = 0; base < chunks.size(); base += wave, ++wave_index) {
    const std::size_t wave_end = std::min(base + wave, chunks.size());
    if (engine != nullptr) engine->begin_wave(wave_index);
    if (straggle_ms > 0.0) {
      // Injected straggler: the shard still answers, just late.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(straggle_ms));
    }
    const auto t_submit = Clock::now();
    // Submit phase: encode every (chunk, worker) packet of the wave into
    // the reused flat buffers, drawing the loss schedule as we go, then
    // apply the whole wave with ONE shard-mutex hold (the per-packet
    // protocol locked per traversal — pure contention with zero benefit,
    // since concurrent jobs own disjoint slot ranges).
    const std::size_t mid = base + (wave_end - base) / 2;
    for (std::size_t k = base; k < wave_end; ++k) {
      if (k == mid &&
          fire_kill_fault(shard_idx, FaultPhase::kMidAdd, wave_index)) {
        // Deliver what the switch already received before dying, so the
        // corpse's registers hold exactly the partial state a real
        // mid-wave death would leave.
        if (engine != nullptr) {
          flush_wave_guarded(shard, stats, *engine);
        } else {
          flush_wave(shard, scratch.pkts);
        }
        throw ShardDeadError(shard_idx,
                             "cluster: shard killed mid-add (injected)");
      }
      const std::size_t c = chunks[k];
      const auto slot = static_cast<std::uint16_t>(range.lo + (k - base));
      for (int w = 0; w < nw; ++w) {
        if (dead_mask & (1u << static_cast<unsigned>(w))) continue;
        if (engine != nullptr && engine->worker_silent(w, wave_index)) {
          continue;  // injected death: this worker's packets never arrive
        }
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          scratch.lane_buf[l] =
              i < n
                  ? core::fp32_bits(workers[static_cast<std::size_t>(w)][i])
                  : 0;
        }
        const bool ok =
            engine != nullptr
                ? queue_add_guarded(slot, static_cast<std::uint8_t>(w),
                                    scratch.lane_buf, scratch.stamps[k - base],
                                    params, rng, stats, *engine)
                : queue_add(slot, static_cast<std::uint8_t>(w),
                            scratch.lane_buf, params, rng, stats,
                            scratch.pkts);
        if (!ok) {
          // Deliver what the switch already received, so failure leaves
          // the same register state the per-packet protocol would.
          if (engine != nullptr) {
            flush_wave_guarded(shard, stats, *engine);
          } else {
            flush_wave(shard, scratch.pkts);
          }
          throw ShardDeadError(
              shard_idx,
              "cluster: aggregation packet exceeded max_retransmits");
        }
      }
    }
    if (engine != nullptr) {
      flush_wave_guarded(shard, stats, *engine);
    } else {
      flush_wave(shard, scratch.pkts);
    }
    const auto t_collect = Clock::now();
    // One clock reading feeds both instruments: the histogram observation
    // and the retroactive span share t_submit/t_collect exactly, so traced
    // wave wall-times agree with phase_breakdown() to the nanosecond.
    m_shard_phase_[static_cast<std::size_t>(shard_idx)][0]->observe(
        static_cast<double>(elapsed_ns(t_submit, t_collect)) * 1e-9);
    if (trace) {
      const auto add_span =
          trace->begin_at("add_wave", shard_span.id(), t_submit);
      trace->annotate(add_span, "wave", std::to_string(wave_index));
      trace->end_at(add_span, t_collect);
    }

    if (engine != nullptr) {
      // Injected whole-switch state loss lands after the wave's adds (the
      // moment it hurts most), then recovery: replay the wave while the
      // generation disagrees with the mirror, and probe the wave's dedup
      // bitmaps for a worker that reached no slot at all.
      if (engine->should_wipe(wave_index)) {
        util::LockGuard lk(shard.mu);
        shard.sw.wipe_state();
      }
      recover_shard_wave(shard_idx, shard, range, chunks, workers, base,
                         wave_end, wave_index, stats, *engine, dead_mask,
                         scratch);
    }

    if (fire_kill_fault(shard_idx, FaultPhase::kMidCollect, wave_index)) {
      // Die halfway through the collect: the first half of the wave's
      // slots got their read-and-reset through, the rest keep their sums
      // AND their dedup-bitmap bits — exactly the state scrub_range must
      // clean before the range can serve another tenant.
      const std::size_t half = (wave_end - base) / 2;
      {
        util::LockGuard lk(shard.mu);
        shard.sw.read_and_reset_batch(
            static_cast<std::uint16_t>(range.lo), half,
            {scratch.wave_values.data(), half * lanes});
      }
      throw ShardDeadError(shard_idx,
                           "cluster: shard killed mid-collect (injected)");
    }

    // Collect phase: idempotent read then reset per chunk. Batched: one
    // compiled-egress read_and_reset_batch over the wave's slots (the
    // default). Per-slot reference: read/reset round trips through the
    // packet sim, all switch operations of the wave under one mutex hold,
    // in the per-packet protocol's exact order (reads don't mutate; resets
    // only touch this job's private slots, so coarser locking is
    // externally invisible).
    const auto note_collect = [&](Clock::time_point t_done) {
      m_shard_phase_[static_cast<std::size_t>(shard_idx)][1]->observe(
          static_cast<double>(elapsed_ns(t_collect, t_done)) * 1e-9);
      if (trace) {
        const auto collect_span =
            trace->begin_at("collect_wave", shard_span.id(), t_collect);
        trace->annotate(collect_span, "wave", std::to_string(wave_index));
        trace->end_at(collect_span, t_done);
      }
    };
    if (opts_.batched_collect) {
      collect_wave(shard_idx, shard, range, chunks, base, wave_end, result,
                   params, rng, stats, scratch);
      if (engine != nullptr) {
        // The collect reset every wave slot, bumping its epoch on the
        // switch — advance the mirror in lockstep so the next wave's adds
        // carry the fresh stamp (and any still-buffered ghost from THIS
        // wave is now provably stale).
        for (std::size_t k = 0; k < wave_end - base; ++k) {
          scratch.stamps[k] = (scratch.stamps[k] & 0xFFFF0000u) |
                              ((scratch.stamps[k] + 1u) & 0xFFFFu);
        }
      }
      note_collect(Clock::now());
      continue;
    }
    {
      util::LockGuard lk(shard.mu);
      for (std::size_t k = base; k < wave_end; ++k) {
        const std::size_t c = chunks[k];
        const auto slot = static_cast<std::uint16_t>(range.lo + (k - base));
        bool have = false;
        for (int attempt = 0; attempt <= params.max_retransmits && !have;
             ++attempt) {
          ++stats.packets_sent;
          if (rng.next_double() < params.loss_rate) {
            ++stats.packets_lost;
            continue;
          }
          shard.sw.read_into(slot, scratch.result_buf);
          if (rng.next_double() < params.loss_rate) {
            ++stats.packets_lost;
            continue;
          }
          have = true;
        }
        if (!have) {
          throw ShardDeadError(
              shard_idx, "cluster: read packet exceeded max_retransmits");
        }
        for (std::size_t l = 0; l < lanes; ++l) {
          const std::size_t i = c * lanes + l;
          if (i < n) result[i] = core::fp32_value(scratch.result_buf.values[l]);
        }
        bool cleared = false;
        for (int attempt = 0; attempt <= params.max_retransmits; ++attempt) {
          ++stats.packets_sent;
          if (rng.next_double() < params.loss_rate) {
            ++stats.packets_lost;
            continue;
          }
          shard.sw.read_and_reset_into(slot, scratch.result_buf);
          ++stats.slot_reuses;
          cleared = true;
          if (rng.next_double() >= params.loss_rate) break;
          ++stats.packets_lost;  // ack lost: re-clearing is harmless
        }
        if (!cleared) {
          // A dirty slot would poison the range's next tenant via the dedup
          // bitmap — fail loudly instead of finishing with a hidden leak.
          throw ShardDeadError(
              shard_idx, "cluster: reset packet exceeded max_retransmits");
        }
      }
    }
    note_collect(Clock::now());
  }
}

void AggregationService::encode_wave(
    WaveBank& bank, std::size_t wave_index, std::size_t base,
    std::size_t wave_end, int shard_idx, Shard& shard, const SlotRange& range,
    const std::vector<std::size_t>& chunks,
    std::span<const std::span<const float>> workers, std::size_t result_n,
    const JobParams& params, util::Rng& rng, switchml::SessionStats& stats,
    std::uint32_t dead_mask, WaveScratch& scratch) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const int nw = static_cast<int>(workers.size());
  bank.pkts.clear();
  bank.base = base;
  bank.end = wave_end;
  bank.index = wave_index;
  bank.sched = {};
  bank.sched_drawn = false;
  bank.add_failed = false;
  bank.kill_pending = false;
  bank.encode_ns = 0;
  const std::size_t mid = base + (wave_end - base) / 2;
  for (std::size_t k = base; k < wave_end; ++k) {
    if (k == mid &&
        fire_kill_fault(shard_idx, FaultPhase::kMidAdd, wave_index)) {
      // Deliver what the switch already received before dying, so the
      // corpse's registers hold the partial state a real mid-wave death
      // would leave (the range is scrubbed before reuse either way).
      flush_wave(shard, bank.pkts);
      throw ShardDeadError(shard_idx,
                           "cluster: shard killed mid-add (injected)");
    }
    const std::size_t c = chunks[k];
    const auto slot = static_cast<std::uint16_t>(range.lo + (k - base));
    for (int w = 0; w < nw; ++w) {
      if (dead_mask & (1u << static_cast<unsigned>(w))) continue;
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t i = c * lanes + l;
        scratch.lane_buf[l] =
            i < result_n
                ? core::fp32_bits(workers[static_cast<std::size_t>(w)][i])
                : 0;
      }
      if (!queue_add(slot, static_cast<std::uint8_t>(w), scratch.lane_buf,
                     params, rng, stats, bank.pkts)) {
        // Mark and return WITHOUT drawing the collect schedule: the serial
        // path dies at the flush, before any collect draw of this wave.
        bank.add_failed = true;
        bank.encode_ns = elapsed_ns(t0, Clock::now());
        return;
      }
    }
  }
  // The wave's collect schedule is pre-drawn HERE — immediately after its
  // add draws, from the same rng stream — so the pipelined global draw
  // order (add_k, collect_k, add_k+1, ...) is exactly the serial path's.
  // An injected mid-collect kill precedes the draw in the serial loop, so
  // a pending one suppresses it the same way (the claim itself happens at
  // the apply stage, where the death executes).
  bank.kill_pending =
      peek_kill_fault(shard_idx, FaultPhase::kMidCollect, wave_index);
  if (!bank.kill_pending) {
    bank.sched = switchml::draw_collect_schedule(
        wave_end - base, params.loss_rate, params.max_retransmits, rng,
        stats);
    bank.sched_drawn = true;
  }
  bank.encode_ns = elapsed_ns(t0, Clock::now());
}

void AggregationService::run_wave_pipeline(
    int shard_idx, Shard& shard, const SlotRange& range,
    const std::vector<std::size_t>& chunks,
    std::span<const std::span<const float>> workers, std::span<float> result,
    const JobParams& params, util::Rng& rng, switchml::SessionStats& stats,
    std::uint32_t dead_mask, telemetry::Trace* trace,
    telemetry::Trace::SpanId shard_span, WaveScratch& scratch,
    double straggle_ms) {
  using Clock = std::chrono::steady_clock;
  if (chunks.empty()) return;
  const std::size_t wave = range.size();
  const std::size_t n = result.size();
  const std::size_t n_waves = (chunks.size() + wave - 1) / wave;

  // Batched telemetry: the pipeline accumulates phase nanoseconds locally
  // and observes each histogram ONCE per shard task instead of per wave
  // (the scope guard books completed waves even when a ShardDeadError
  // unwinds). The per-wave trace spans reuse the same integer-nanosecond
  // durations, so traced totals still equal phase_breakdown() exactly.
  std::uint64_t add_ns = 0;
  std::uint64_t collect_ns = 0;
  const auto phase = m_shard_phase_[static_cast<std::size_t>(shard_idx)];
  struct PhaseGuard {
    telemetry::Histogram* add;
    telemetry::Histogram* collect;
    const std::uint64_t* add_ns;
    const std::uint64_t* collect_ns;
    ~PhaseGuard() {
      add->observe(static_cast<double>(*add_ns) * 1e-9);
      collect->observe(static_cast<double>(*collect_ns) * 1e-9);
    }
  } phase_guard{phase[0], phase[1], &add_ns, &collect_ns};

  // Two-stage software pipeline over ping-pong banks:
  //   E(k): encode wave k (pack packets, draw add + collect schedules)
  //   F(k): flush wave k's adds (one mutex hold)
  //   C(k): apply wave k's pre-drawn collect (one mutex hold) + scatter
  // executed as E(0), then per wave: F(k), E(k+1), C(k) — the host packs
  // the NEXT bank between handing the switch this wave's adds and draining
  // its collect, which is exactly where a real NIC would overlap them.
  // C(k) still precedes F(k+1), so slots are always reset before reuse.
  std::array<WaveBank, 2> banks;
  encode_wave(banks[0], 0, 0, std::min(wave, chunks.size()), shard_idx, shard,
              range, chunks, workers, n, params, rng, stats, dead_mask,
              scratch);
  for (std::size_t k = 0; k < n_waves; ++k) {
    WaveBank& cur = banks[k & 1];
    WaveBank& next = banks[(k + 1) & 1];
    if (straggle_ms > 0.0) {
      // Injected straggler: the shard still answers, just late.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(straggle_ms));
    }
    // F(k): hand the switch the wave. On encode-time retransmit exhaustion
    // the partial flush still happens first — the exact register state the
    // serial path leaves — and the wave books no phase time (serial dies
    // before its observation point too).
    const auto t_f0 = Clock::now();
    flush_wave(shard, cur.pkts);
    if (cur.add_failed) {
      throw ShardDeadError(
          shard_idx, "cluster: aggregation packet exceeded max_retransmits");
    }
    const auto t_f1 = Clock::now();
    const std::uint64_t wave_add_ns = cur.encode_ns + elapsed_ns(t_f0, t_f1);
    add_ns += wave_add_ns;
    if (trace) {
      // The span is drawn as the contiguous window ending at flush
      // completion, sized encode+flush — under pipelining the encode
      // genuinely overlaps the previous collect_wave span, and the trace
      // shows that overlap honestly.
      const auto add_span = trace->begin_at(
          "add_wave", shard_span,
          t_f1 - std::chrono::nanoseconds(wave_add_ns));
      trace->annotate(add_span, "wave", std::to_string(cur.index));
      trace->end_at(add_span, t_f1);
    }
    // E(k+1): pre-pack the next wave while this wave's collect drains.
    // Skipped when this wave is already doomed (collect-schedule failure or
    // a pending injected kill): the serial path never reaches wave k+1's
    // encode, so its rng draws must not happen here either.
    if (k + 1 < n_waves && cur.sched_drawn && cur.sched.failure == 0) {
      encode_wave(next, k + 1, (k + 1) * wave,
                  std::min((k + 2) * wave, chunks.size()), shard_idx, shard,
                  range, chunks, workers, n, params, rng, stats, dead_mask,
                  scratch);
    }
    // C(k): drain the collect.
    const auto t_c0 = Clock::now();
    if (cur.kill_pending) {
      if (fire_kill_fault(shard_idx, FaultPhase::kMidCollect, cur.index)) {
        // Die halfway through the collect: the first half of the wave's
        // slots got their read-and-reset through, the rest keep their sums
        // AND their dedup-bitmap bits — exactly the state scrub_range must
        // clean before the range can serve another tenant.
        const auto lanes = static_cast<std::size_t>(opts_.lanes);
        const std::size_t half = (cur.end - cur.base) / 2;
        {
          util::LockGuard lk(shard.mu);
          shard.sw.read_and_reset_batch(
              static_cast<std::uint16_t>(range.lo), half,
              {scratch.wave_values.data(), half * lanes});
        }
        throw ShardDeadError(shard_idx,
                             "cluster: shard killed mid-collect (injected)");
      }
      // Another task claimed the one-shot fault between our peek and now
      // (possible only with concurrent jobs targeting the same injected
      // fault). This wave lives after all: draw its schedule now.
      cur.sched = switchml::draw_collect_schedule(
          cur.end - cur.base, params.loss_rate, params.max_retransmits, rng,
          stats);
      cur.sched_drawn = true;
    }
    apply_collect(shard_idx, shard, range, chunks, cur.base, cur.end, result,
                  cur.sched, scratch);
    const auto t_c1 = Clock::now();
    collect_ns += elapsed_ns(t_c0, t_c1);
    if (trace) {
      const auto collect_span =
          trace->begin_at("collect_wave", shard_span, t_c0);
      trace->annotate(collect_span, "wave", std::to_string(cur.index));
      trace->end_at(collect_span, t_c1);
    }
  }
}

JobReport AggregationService::reduce_admitted(const JobRequest& job) {
  // Views over the request's vectors — the floats are read in place.
  const std::vector<std::span<const float>> views(job.workers.begin(),
                                                  job.workers.end());
  JobReport report;
  report.result.assign(job.workers.empty() ? 0 : job.workers.front().size(),
                       0.0f);
  run_job(JobView{job.tenant, views, job.loss_rate, job.max_retransmits},
          report.result, report);
  return report;
}

JobReport AggregationService::reduce(const JobRequest& job) {
  // Synchronous jobs never queue, but they DO charge the tenant's token
  // bucket: a tenant's rate limit covers its whole submission surface, not
  // just the async path.
  admit_direct(job.tenant);
  return reduce_admitted(job);
}

JobReport AggregationService::reduce(const JobView& job,
                                     std::span<float> out) {
  admit_direct(job.tenant);
  JobReport report;
  run_job(job, out, report);
  return report;
}

void AggregationService::run_pass_task(PassContext& ctx, int shard) {
  const auto s = static_cast<std::size_t>(shard);
  PassContext::ShardSlot& slot = ctx.slots[s];
  util::Rng rng(task_seed(opts_.loss_seed, ctx.job_id, shard, ctx.pass));
  // One deterministic fault stream per (job, shard, pass), exactly like
  // the loss stream: replaying a job replays its faults.
  std::unique_ptr<fault::FaultEngine> engine;
  if (opts_.fault.enabled) {
    engine = std::make_unique<fault::FaultEngine>(
        opts_.fault, task_seed(opts_.fault.seed, ctx.job_id, shard, ctx.pass),
        opts_.lanes);
  }
  try {
    run_shard_chunks(shard, *shards_[s], (*ctx.ranges)[s], (*ctx.parts)[s],
                     ctx.workers, ctx.out, ctx.params, rng, slot.stats,
                     engine.get(), ctx.dead_mask, ctx.trace, ctx.pass_span);
  } catch (...) {
    slot.error = std::current_exception();
  }
}

std::vector<std::exception_ptr> AggregationService::run_pass(
    const std::vector<std::vector<std::size_t>>& parts,
    const std::vector<SlotRange>& ranges,
    std::span<const std::span<const float>> workers, std::span<float> out,
    const JobParams& params, std::uint64_t job_id, std::uint64_t pass,
    std::uint32_t dead_mask, JobReport& report, telemetry::Trace* trace,
    telemetry::Trace::SpanId pass_span) {
  PassContext ctx;
  ctx.parts = &parts;
  ctx.ranges = &ranges;
  ctx.workers = workers;
  ctx.out = out;
  ctx.params = params;
  ctx.job_id = job_id;
  ctx.pass = pass;
  ctx.dead_mask = dead_mask;
  ctx.trace = trace;
  ctx.pass_span = pass_span;
  ctx.slots.resize(shards_.size());
  std::vector<std::exception_ptr> errors(shards_.size());
  int active = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!parts[s].empty()) ++active;
  }
  if (active == 0) return errors;
  if (inline_dispatch_) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!parts[s].empty()) run_pass_task(ctx, static_cast<int>(s));
    }
  } else {
    // Fan-out: one mailbox ticket per ACTIVE shard — a ring store plus one
    // futex wake each; idle shards' workers stay asleep. (The old pool
    // pushed lambdas into one locked deque and notify_all'd EVERY worker
    // for every pass.)
    ctx.pending.store(active, std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!parts[s].empty()) {
        workers_[s]->mailbox.push(PassTicket{&ctx, false});
      }
    }
    // Join on the service-wide pass-epoch doorbell, re-checking our own
    // pending counter: the last worker's notify lands on a service member,
    // never on this dying frame (the lifetime bug the old Join condvar
    // needed a lock in the notify path to dodge). Every pass completion
    // wakes all concurrent joiners; they re-check and go back to sleep —
    // passes complete at wave granularity, so the cross-talk is noise.
    for (;;) {
      if (ctx.pending.load(std::memory_order_acquire) == 0) break;
      const std::uint64_t e = pass_epoch_.load(std::memory_order_acquire);
      if (ctx.pending.load(std::memory_order_acquire) == 0) break;
      pass_epoch_.wait(e, std::memory_order_acquire);
    }
  }
  // Merge under the join — single-threaded, after every worker's release
  // decrement — instead of from N workers into adjacent vector elements.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    report.per_shard[s] += ctx.slots[s].stats;  // += : retry passes merge in
    errors[s] = ctx.slots[s].error;
  }
  if (!inline_dispatch_) {
    // Refresh the scrapeable mailbox gauges from the per-shard counters
    // (three relaxed loads + stores per active shard — noise next to the
    // pass itself).
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (parts[s].empty()) continue;
      const MailboxStats ms = workers_[s]->mailbox.stats();
      m_mailbox_[s][0]->set(static_cast<double>(ms.enqueued));
      m_mailbox_[s][1]->set(static_cast<double>(ms.wakeups));
      m_mailbox_[s][2]->set(static_cast<double>(ms.spurious_wakeups));
    }
  }
  return errors;
}

MailboxStats AggregationService::mailbox_stats(int shard) const {
  if (shard < 0 || shard >= opts_.num_shards) {
    throw std::invalid_argument("cluster: mailbox_stats: unknown shard");
  }
  if (inline_dispatch_) return {};
  return workers_[static_cast<std::size_t>(shard)]->mailbox.stats();
}

void AggregationService::run_job(const JobView& job, std::span<float> out,
                                 JobReport& report) {
  if (job.workers.empty()) {
    throw std::invalid_argument("cluster: job has no workers");
  }
  if (job.workers.size() > 32) {
    throw std::invalid_argument("cluster: bitmap is 32 bits wide");
  }
  const std::size_t n = job.workers.front().size();
  for (const auto w : job.workers) {
    if (w.size() != n) {
      throw std::invalid_argument("cluster: worker vectors differ in length");
    }
  }
  if (out.size() != n) {
    throw std::invalid_argument("cluster: out span length mismatch");
  }

  // Tracing is opt-in per service: acquire pairs with attach_trace's
  // release, so the parent id is coherent with the pointer. Validation
  // rejects above are untraced — a rejected job never started.
  telemetry::Trace* const trace = trace_.load(std::memory_order_acquire);
  const telemetry::Trace::SpanId job_span =
      trace ? trace->begin("job",
                           trace_parent_.load(std::memory_order_relaxed))
            : telemetry::Trace::kNone;
  if (trace) trace->annotate(job_span, "tenant", std::string(job.tenant));
  const telemetry::Trace::SpanId submit_span =
      trace ? trace->begin("submit", job_span) : telemetry::Trace::kNone;

  // High-water accounting for the bounded-concurrency guarantee.
  const std::uint64_t running =
      running_jobs_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_jobs_.load(std::memory_order_relaxed);
  while (running > peak &&
         !peak_jobs_.compare_exchange_weak(peak, running,
                                           std::memory_order_relaxed)) {
  }
  struct RunningGuard {
    std::atomic<std::uint64_t>& c;
    ~RunningGuard() { c.fetch_sub(1, std::memory_order_relaxed); }
  } running_guard{running_jobs_};

  report.tenant = job.tenant;
  report.per_shard.assign(static_cast<std::size_t>(opts_.num_shards), {});
  std::fill(out.begin(), out.end(), 0.0f);
  {
    util::LockGuard lk(stats_mu_);
    report.job_id = next_job_id_++;
  }
  if (trace) {
    trace->annotate(job_span, "job_id", std::to_string(report.job_id));
    trace->end(submit_span);
  }
  if (n == 0) {
    if (trace) trace->end(job_span);
    return;
  }
  const auto job_t0 = std::chrono::steady_clock::now();

  const bool fo = opts_.failover.enabled;
  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t chunks = (n + lanes - 1) / lanes;
  const telemetry::Trace::SpanId part_span =
      trace ? trace->begin("partition", job_span) : telemetry::Trace::kNone;
  auto parts = router_.partition(chunks);

  // Job-level failover accounting: lives on the job total (and tenant
  // stats), not on any one shard — a re-route is a fabric event.
  switchml::SessionStats failover_delta{};

  // One liveness snapshot per job: the fold below routes around shards
  // dead at snapshot time, and range acquisition follows the folded parts
  // (non-empty chunks ⟹ a range), so a concurrent death can never hand a
  // task chunks without a slot range. A shard that dies after the
  // snapshot just fails this job's pass and the retry machinery recovers.
  std::vector<char> alive_mask(shards_.size(), 1);
  if (fo) {
    const std::vector<int> alive = health_.alive_shards();
    if (alive.empty()) {
      {
        util::LockGuard lk(stats_mu_);
        ++jobs_failed_;
        // The tenant's SLO book must agree with the service-level counter.
        tenant_account_locked(job.tenant)
            .slo.record(0.0, /*completed=*/false, /*failed_over=*/false);
      }
      m_jobs_[1]->inc();
      if (trace) {
        trace->annotate(job_span, "outcome", "failed");
        trace->end(part_span);
        trace->end(job_span);
      }
      throw std::runtime_error("cluster: no alive shards");
    }
    std::fill(alive_mask.begin(), alive_mask.end(), 0);
    for (const int s : alive) alive_mask[static_cast<std::size_t>(s)] = 1;
    // Route around shards already known dead before sending a packet: the
    // degraded (N-1) steady state after a death.
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].empty() || alive_mask[s]) continue;
      const auto re =
          router_.reroute(parts[s], static_cast<int>(s), alive);
      failover_delta.chunks_rerouted += parts[s].size();
      parts[s].clear();
      for (std::size_t t = 0; t < re.size(); ++t) {
        parts[t].insert(parts[t].end(), re[t].begin(), re[t].end());
      }
    }
    for (auto& p : parts) std::sort(p.begin(), p.end());
  }
  if (trace) trace->end(part_span);

  // Acquire one slot range per ACTIVE shard, in ascending shard order (the
  // same order for every job: no circular wait between tenants). A retry
  // pass releases every held range first and re-acquires only its targets
  // — holding nothing while waiting keeps that deadlock-free too, and the
  // healthy path never pays for ranges it doesn't route to.
  std::vector<SlotRange> ranges(shards_.size());
  const auto acquire_ranges =
      [this, &ranges](const std::vector<std::vector<std::size_t>>& want) {
        util::UniqueLock lk(alloc_mu_);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
          if (want[s].empty()) continue;
          for (;;) {
            if (auto r = shards_[s]->slots.allocate(opts_.slots_per_job)) {
              ranges[s] = *r;
              break;
            }
            alloc_cv_.wait(lk);
          }
        }
      };
  {
    telemetry::ScopedSpan acq(trace, "acquire_slots", job_span);
    acquire_ranges(parts);
  }

  const JobParams params{
      job.loss_rate >= 0.0 ? job.loss_rate : opts_.loss_rate,
      job.max_retransmits >= 0 ? job.max_retransmits : opts_.max_retransmits};
  const std::span<const std::span<const float>> workers = job.workers;

  const auto begin_pass = [&](int pass_no) {
    if (!trace) return telemetry::Trace::kNone;
    const auto id = trace->begin("pass", job_span);
    trace->annotate(id, "pass", std::to_string(pass_no));
    return id;
  };

  std::exception_ptr error;
  bool failed = false;
  int reroutes = 0;
  // Worker-death recovery state: the mask of workers declared dead so far
  // (threaded into every pass so shard tasks skip them), and a distinct
  // pass counter so every replay draws a fresh, deterministic fault/loss
  // stream (for failover-only jobs it equals `reroutes`, preserving the
  // pre-fault seed sequence exactly).
  std::uint32_t dead_mask = 0;
  int worker_replays = 0;
  std::uint64_t pass_no = 0;
  telemetry::Trace::SpanId pass_span = begin_pass(0);
  auto errors = run_pass(parts, ranges, workers, out, params, report.job_id,
                         0, dead_mask, report, trace, pass_span);
  if (trace) trace->end(pass_span);
  for (;;) {
    // Classify this pass's outcome: shard deaths are failover candidates,
    // a dead WORKER is a job-level event handled by policy below, anything
    // else fails the job as before.
    std::exception_ptr fatal;
    std::vector<int> dead_now;
    bool any_error = false;
    std::exception_ptr worker_dead_err;
    int dead_worker = -1;
    for (std::size_t s = 0; s < errors.size(); ++s) {
      if (!errors[s]) {
        if (!parts[s].empty()) health_.record_success(static_cast<int>(s));
        continue;
      }
      any_error = true;
      try {
        std::rethrow_exception(errors[s]);
      } catch (const fault::WorkerDeadError& e) {
        // The shard answered every probe — the WORKER's data is what's
        // never coming. Leave shard health alone.
        if (!worker_dead_err) {
          worker_dead_err = errors[s];
          dead_worker = e.worker();
        }
      } catch (const ShardDeadError&) {
        const bool dead = health_.record_failure(static_cast<int>(s));
        if (fo && dead) {
          dead_now.push_back(static_cast<int>(s));
        } else if (!fatal) {
          // Below the death threshold (or failover off): surface it.
          fatal = errors[s];
        }
      } catch (...) {
        if (!fatal) fatal = errors[s];
      }
    }
    if (!any_error) break;  // pass completed cleanly
    if (worker_dead_err && !fatal) {
      // Worker death outranks shard retries: shards with fewer waves
      // finished before the death wave WITH the dead worker's data, so
      // patching per shard cannot excise it — under kDegrade the whole job
      // replays over the survivors (against a freshly computed partition,
      // so it composes with any shard deaths recorded above).
      ++failover_delta.faults.workers_declared_dead;
      failover_delta.dead_workers |= 1u << static_cast<unsigned>(dead_worker);
      dead_mask |= 1u << static_cast<unsigned>(dead_worker);
      const bool degrade = opts_.fault.dead_worker_policy ==
                           fault::DeadWorkerPolicy::kDegrade;
      if (!degrade ||
          std::popcount(dead_mask) >=
              static_cast<int>(job.workers.size()) ||
          ++worker_replays > static_cast<int>(job.workers.size())) {
        error = worker_dead_err;
        failed = true;
        break;
      }
      auto replay_parts = router_.partition(chunks);
      if (fo) {
        const std::vector<int> alive = health_.alive_shards();
        if (alive.empty()) {
          error = worker_dead_err;
          failed = true;
          break;
        }
        std::vector<char> alive2(shards_.size(), 0);
        for (const int a : alive) alive2[static_cast<std::size_t>(a)] = 1;
        for (std::size_t s = 0; s < replay_parts.size(); ++s) {
          if (replay_parts[s].empty() || alive2[s]) continue;
          const auto re =
              router_.reroute(replay_parts[s], static_cast<int>(s), alive);
          replay_parts[s].clear();
          for (std::size_t t = 0; t < re.size(); ++t) {
            replay_parts[t].insert(replay_parts[t].end(), re[t].begin(),
                                   re[t].end());
          }
        }
        for (auto& p : replay_parts) std::sort(p.begin(), p.end());
      }
      // Scrub everything the aborted attempt touched (the resets bump the
      // slot epochs, so any straggler packet of that attempt is provably
      // stale), swap the held ranges for the replay layout, and rerun.
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (!ranges[s].empty()) scrub_range(*shards_[s], ranges[s]);
      }
      ++failover_delta.faults.epoch_bumps;
      {
        util::LockGuard lk(alloc_mu_);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
          if (!ranges[s].empty()) shards_[s]->slots.release(ranges[s]);
          ranges[s] = SlotRange{};
        }
      }
      alloc_cv_.notify_all();
      acquire_ranges(replay_parts);
      parts = std::move(replay_parts);
      ++pass_no;
      pass_span = begin_pass(static_cast<int>(pass_no));
      errors = run_pass(parts, ranges, workers, out, params, report.job_id,
                        pass_no, dead_mask, report, trace, pass_span);
      if (trace) trace->end(pass_span);
      continue;
    }
    if (!fo || fatal || dead_now.empty() ||
        reroutes >= opts_.failover.max_reroutes_per_job) {
      for (const std::exception_ptr& e : errors) {
        if (e && !error) error = e;
      }
      if (fatal) error = fatal;
      failed = true;
      break;
    }
    const std::vector<int> alive = health_.alive_shards();
    if (alive.empty()) {
      error = errors[static_cast<std::size_t>(dead_now.front())];
      failed = true;
      break;
    }
    // Failover: scrub each corpse's range (in a real rack the replacement
    // switch comes up zeroed; here the scrub models that re-image — the
    // survivors' slots were already reset by their own collects), re-home
    // the dead chunk sets onto the survivors, and retry those chunks
    // cleanly. Chunk sums are order-free across shards — every chunk is
    // one private slot fed in worker order — so the retried values are
    // bit-identical to a no-failure run.
    telemetry::Trace::SpanId fo_span = telemetry::Trace::kNone;
    if (trace) {
      fo_span = trace->begin("failover", job_span);
      std::string dead;
      for (const int d : dead_now) {
        if (!dead.empty()) dead += ",";
        dead += std::to_string(d);
      }
      trace->annotate(fo_span, "dead_shards", dead);
      trace->annotate(fo_span, "retry", std::to_string(reroutes + 1));
    }
    std::vector<std::vector<std::size_t>> retry_parts(shards_.size());
    for (const int d : dead_now) {
      const auto ds = static_cast<std::size_t>(d);
      scrub_range(*shards_[ds], ranges[ds]);
      const auto re = router_.reroute(parts[ds], d, alive);
      failover_delta.chunks_rerouted += parts[ds].size();
      ++failover_delta.shard_failures;
      for (std::size_t t = 0; t < re.size(); ++t) {
        retry_parts[t].insert(retry_parts[t].end(), re[t].begin(),
                              re[t].end());
      }
    }
    for (auto& p : retry_parts) std::sort(p.begin(), p.end());
    // Release EVERY held range before re-acquiring the retry targets:
    // waiting on the allocator while holding nothing cannot deadlock with
    // other tenants, and the freed slots let their jobs make progress.
    {
      util::LockGuard lk(alloc_mu_);
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (!ranges[s].empty()) shards_[s]->slots.release(ranges[s]);
        ranges[s] = SlotRange{};
      }
    }
    alloc_cv_.notify_all();
    acquire_ranges(retry_parts);
    if (trace) trace->end(fo_span);
    ++failover_delta.failover_retries;
    ++reroutes;
    ++pass_no;
    parts = std::move(retry_parts);
    pass_span = begin_pass(static_cast<int>(pass_no));
    errors = run_pass(parts, ranges, workers, out, params, report.job_id,
                      pass_no, dead_mask, report, trace, pass_span);
    if (trace) trace->end(pass_span);
  }

  if (failed) {
    // A failed job can leave partial sums and dedup-bitmap bits in its
    // slots; scrub them (lossless control-plane resets) before the ranges
    // go back into the pool for the next tenant.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ranges[s].empty()) scrub_range(*shards_[s], ranges[s]);
    }
  }
  {
    util::LockGuard lk(alloc_mu_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!ranges[s].empty()) shards_[s]->slots.release(ranges[s]);
    }
  }
  alloc_cv_.notify_all();

  const double wall_s =
      static_cast<double>(
          elapsed_ns(job_t0, std::chrono::steady_clock::now())) *
      1e-9;
  const telemetry::Trace::SpanId merge_span =
      trace ? trace->begin("merge", job_span) : telemetry::Trace::kNone;
  {
    util::LockGuard lk(stats_mu_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->stats += report.per_shard[s];
      report.stats += report.per_shard[s];
    }
    report.stats += failover_delta;
    fabric_stats_ += failover_delta;
    TenantAccount& account = tenant_account_locked(job.tenant);
    account.stats += report.stats;
    account.slo.record(wall_s, !failed,
                       failover_delta.failover_retries > 0);
    if (failed) {
      ++jobs_failed_;
    } else {
      ++jobs_completed_;
    }
  }
  // Registry: job outcome, wall time and fabric-level failover events.
  m_jobs_[failed ? 1 : 0]->inc();
  m_job_wall_->observe(wall_s);
  if (failover_delta.shard_failures != 0) {
    m_shard_deaths_->inc(failover_delta.shard_failures);
  }
  if (failover_delta.chunks_rerouted != 0) {
    m_rerouted_->inc(failover_delta.chunks_rerouted);
  }
  if (failover_delta.failover_retries != 0) {
    m_retries_->inc(failover_delta.failover_retries);
  }
  if (report.stats.faults.epoch_bumps != 0) {
    m_fault_[0]->inc(report.stats.faults.epoch_bumps);
  }
  if (report.stats.faults.workers_declared_dead != 0) {
    m_fault_[1]->inc(report.stats.faults.workers_declared_dead);
  }
  if (report.stats.faults.waves_replayed != 0) {
    m_fault_[2]->inc(report.stats.faults.waves_replayed);
  }
  if (trace) {
    trace->end(merge_span);
    trace->annotate(job_span, "outcome", failed ? "failed" : "completed");
    trace->end(job_span);
  }
  if (failed) std::rethrow_exception(error);
}

std::future<JobReport> AggregationService::submit(JobRequest job) {
  // The job's control loop runs on the bounded job-runner pool; only the
  // per-shard work shares the worker pool. (Worker-pool tasks never block
  // on other tasks and job runners never wait on other jobs — ranges are
  // acquired in ascending shard order — so no fleet of tenants can
  // deadlock or grow the thread count.) Admission is charged once, at
  // enqueue time; the runner body takes the already-admitted path.
  std::string tenant = job.tenant;
  return enqueue_job(tenant, [this, j = std::move(job)]() {
    return reduce_admitted(j);
  });
}

std::future<JobReport> AggregationService::submit(const JobView& job,
                                                  std::span<float> out) {
  // Copy the tenant name and the span *table* (W pointers+lengths) — never
  // the gradients. The caller owns the viewed buffers and `out` until the
  // future resolves.
  return enqueue_job(
      job.tenant,
      [this, tenant = std::string(job.tenant),
       views = std::vector<std::span<const float>>(job.workers.begin(),
                                                   job.workers.end()),
       loss = job.loss_rate, retx = job.max_retransmits, out]() {
        JobReport report;
        run_job(JobView{tenant, views, loss, retx}, out, report);
        return report;
      });
}

void AggregationService::kill_shard(int shard) {
  if (!opts_.failover.enabled) {
    throw std::logic_error(
        "cluster: kill_shard requires ClusterOptions::failover.enabled");
  }
  if (shard < 0 || shard >= opts_.num_shards) {
    throw std::invalid_argument("cluster: kill_shard: unknown shard");
  }
  health_.mark_dead(shard);
}

AggregationService::TenantAccount& AggregationService::tenant_account_locked(
    std::string_view tenant) {
  const auto it = tenant_stats_.find(tenant);
  if (it != tenant_stats_.end()) return it->second;
  return tenant_stats_.emplace(std::string(tenant), TenantAccount{})
      .first->second;
}

switchml::SessionStats AggregationService::shard_stats(int shard) const {
  // Lock order stats_mu_ -> shard.mu is safe: no path takes them reversed.
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  util::LockGuard lk(stats_mu_);
  switchml::SessionStats out = sh.stats;
  {
    // The shard switch's kernel op counters (§5.2.1 taxonomy) are owned by
    // the switch itself — fold them in so per-shard books carry them.
    util::LockGuard swlk(sh.mu);
    out.ops = sh.sw.op_counters();
  }
  return out;
}

switchml::SessionStats AggregationService::tenant_stats(
    std::string_view tenant) const {
  util::LockGuard lk(stats_mu_);
  const auto it = tenant_stats_.find(tenant);
  return it == tenant_stats_.end() ? switchml::SessionStats{}
                                   : it->second.stats;
}

TenantSlo AggregationService::tenant_slo(std::string_view tenant) const {
  util::LockGuard lk(stats_mu_);
  const auto it = tenant_stats_.find(tenant);
  return it == tenant_stats_.end() ? TenantSlo{} : it->second.slo.snapshot();
}

switchml::SessionStats AggregationService::total_stats() const {
  util::LockGuard lk(stats_mu_);
  switchml::SessionStats total = fabric_stats_;
  for (const auto& s : shards_) {
    total += s->stats;
    util::LockGuard swlk(s->mu);
    total.ops += s->sw.op_counters();
  }
  return total;
}

std::vector<std::string> AggregationService::tenants() const {
  util::LockGuard lk(stats_mu_);
  std::vector<std::string> out;
  out.reserve(tenant_stats_.size());
  for (const auto& [name, account] : tenant_stats_) out.push_back(name);
  return out;
}

std::uint64_t AggregationService::jobs_completed() const {
  util::LockGuard lk(stats_mu_);
  return jobs_completed_;
}

std::uint64_t AggregationService::jobs_failed() const {
  util::LockGuard lk(stats_mu_);
  return jobs_failed_;
}

std::uint64_t AggregationService::jobs_rejected() const {
  util::LockGuard lk(stats_mu_);
  return jobs_rejected_;
}

std::size_t AggregationService::tenant_queue_depth(
    std::string_view tenant) const {
  util::LockGuard lk(job_mu_);
  const qos::AdmissionControl::TenantState* st = admission_.find(tenant);
  return st == nullptr ? 0 : st->queued;
}

std::uint64_t AggregationService::class_picks(qos::Priority p) const {
  util::LockGuard lk(job_mu_);
  return job_sched_.picks(p);
}

AggregationService::PhaseBreakdown AggregationService::phase_breakdown()
    const {
  // A view over the registry: each shard's phase histogram carries the sum
  // of its wave observations, so the histogram _sum IS the cumulative
  // phase wall time (and what the traced wave spans add up to).
  PhaseBreakdown p;
  for (const auto& h : m_shard_phase_) {
    p.add_s += h[0]->sum();
    p.collect_s += h[1]->sum();
  }
  return p;
}

double modeled_shard_parallel_seconds(
    const std::vector<switchml::SessionStats>& per_shard,
    std::size_t bytes_per_packet, double gbps, double latency_us) {
  // Shards drain independently (no cross-shard events), so the job is done
  // when the most-loaded shard's ingress pipe finishes serializing:
  // back-to-back packets at line rate, plus one propagation delay.
  // Degenerate inputs (no shards, no packets, a non-positive line rate or
  // packet size) model no traffic: 0 seconds, never NaN/inf.
  std::uint64_t max_packets = 0;
  for (const switchml::SessionStats& s : per_shard) {
    max_packets = std::max(max_packets, s.packets_sent);
  }
  if (max_packets == 0 || bytes_per_packet == 0 || gbps <= 0.0) return 0.0;
  const double tx =
      static_cast<double>(bytes_per_packet) * 8.0 / (gbps * 1e9);
  return static_cast<double>(max_packets) * tx + latency_us * 1e-6;
}

}  // namespace fpisa::cluster
