// Chunk -> shard routing plus per-shard slot-range allocation for the
// rack-scale aggregation service. Routing is deterministic (the same job
// always lands on the same shards, so retransmissions find their state) and
// slot ranges are disjoint per tenant, so concurrent jobs sharing a shard
// never touch each other's aggregation registers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace fpisa::cluster {

enum class RoutingPolicy {
  kHash,   ///< splitmix64(chunk ^ salt) % shards — spreads hot prefixes
  kRange,  ///< contiguous chunk blocks per shard — locality, trivial debug
};

const char* routing_policy_name(RoutingPolicy p);

/// Deterministic chunk -> shard placement for a job of `total_chunks`.
class ShardRouter {
 public:
  ShardRouter(int num_shards, RoutingPolicy policy, std::uint64_t salt = 0);

  int num_shards() const { return num_shards_; }
  RoutingPolicy policy() const { return policy_; }

  /// Shard owning chunk `chunk` of a `total_chunks`-chunk job.
  int route(std::size_t chunk, std::size_t total_chunks) const;

  /// All chunks of a job grouped per shard; each shard's list is ascending.
  /// Every chunk in [0, total_chunks) appears in exactly one list.
  std::vector<std::vector<std::size_t>> partition(
      std::size_t total_chunks) const;

  /// Failover placement: deterministically re-homes `chunks` (a dead
  /// shard's chunk set, ascending) onto the surviving shards in `alive`
  /// (ascending ids, must exclude `dead_shard`). Salt-stable — the target
  /// of a chunk depends only on (chunk, salt, dead_shard, alive set), never
  /// on call order or timing, so a job's retry pass and a later job routing
  /// around the same corpse agree on placement. Always hash-spread (even
  /// under kRange) so the survivors absorb the load evenly. Returns one
  /// ascending list per shard (num_shards() entries; non-survivors empty).
  std::vector<std::vector<std::size_t>> reroute(
      std::span<const std::size_t> chunks, int dead_shard,
      std::span<const int> alive) const;
  /// Convenience: every shard except `dead_shard` survives.
  std::vector<std::vector<std::size_t>> reroute(
      std::span<const std::size_t> chunks, int dead_shard) const;

 private:
  int num_shards_;
  RoutingPolicy policy_;
  std::uint64_t salt_;
};

/// A half-open run of aggregation slots [lo, hi) on one shard.
struct SlotRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

/// First-fit free-list allocator over one shard's aggregation slots.
/// Concurrent tenants receive disjoint ranges; release() coalesces
/// neighbours so the pool does not fragment across job churn.
///
/// allocate(want) returns a range of up to `want` slots: the first free
/// block large enough, else the largest free block (a smaller range just
/// means more protocol waves, not failure). Returns nullopt only when the
/// shard has zero free slots — callers wait and retry on release.
class SlotRangeAllocator {
 public:
  explicit SlotRangeAllocator(std::size_t total_slots);

  std::size_t total_slots() const { return total_; }
  std::size_t free_slots() const;

  std::optional<SlotRange> allocate(std::size_t want);
  void release(const SlotRange& r);

 private:
  std::size_t total_;
  std::vector<SlotRange> free_;  ///< sorted by lo, non-adjacent
};

}  // namespace fpisa::cluster
