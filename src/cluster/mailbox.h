// Lock-free shard mailbox: the fan-out primitive of the cluster execution
// engine. Each shard's persistent worker owns one mailbox; a pass dispatch
// posts one ticket per ACTIVE shard (a relaxed ring store + one futex-style
// wake), so idle shards are never woken and no two producers ever contend a
// mutex — the replacement for the old shared task deque + condvar broadcast.
//
// The ring is a Vyukov-style bounded sequence-ticket queue:
//  * each cell carries an atomic sequence number; a producer claims a cell
//    with one fetch_add on the tail ticket, writes the payload, and
//    publishes it by storing seq = pos + 1 (release);
//  * the single consumer knows exactly which cell is next, so when the ring
//    is empty it parks on THAT cell's sequence word via C++20
//    std::atomic::wait — a futex on Linux — and the publishing producer's
//    notify_one wakes exactly this worker, nobody else.
//
// Single-consumer by construction (the shard worker). Producers are the
// job control loops — usually one, but any number are safe: the ticket
// fetch_add linearizes them. Capacity bounds in-flight passes per shard;
// a full ring makes the producer spin-yield until the consumer frees a
// cell (consumers never block on producers, so this always drains).
//
// Wakeup accounting: `wakeups` counts every return from the futex wait,
// `spurious_wakeups` the returns that found the awaited cell still empty.
// With per-cell parking a worker is only ever notified for a ticket it is
// about to consume, so spurious counts stay at zero — pinned by a
// regression test so the broadcast bug can't come back.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

namespace fpisa::cluster {

/// Snapshot of one mailbox's counters (see file comment).
struct MailboxStats {
  std::uint64_t enqueued = 0;          ///< tickets ever posted
  std::uint64_t wakeups = 0;           ///< consumer returns from futex wait
  std::uint64_t spurious_wakeups = 0;  ///< wakeups that found no ticket
};

template <typename T>
class ShardMailbox {
 public:
  explicit ShardMailbox(std::size_t capacity = 256)
      : mask_(capacity - 1), cells_(new Cell[capacity]) {
    // Power-of-two capacity so `pos & mask_` is the ring index.
    static_assert(std::is_trivially_copyable_v<T>,
                  "mailbox payloads are raw tickets");
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      capacity = 256;
      mask_ = capacity - 1;
      cells_.reset(new Cell[capacity]);
    }
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Producer side (any thread): claims a cell, publishes the ticket, and
  /// wakes the consumer if it is parked on that cell. Spin-yields while the
  /// ring is full (in-flight passes per shard are far below capacity).
  void push(const T& value) {
    const std::uint64_t pos =
        enqueue_pos_.fetch_add(1, std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    while (cell.seq.load(std::memory_order_acquire) != pos) {
      std::this_thread::yield();  // ring full: wait for the consumer
    }
    cell.value = value;
    cell.seq.store(pos + 1, std::memory_order_release);
    cell.seq.notify_one();
    enqueued_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consumer side (the single shard worker): non-blocking pop.
  bool try_pop(T& out) {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    if (cell.seq.load(std::memory_order_acquire) != dequeue_pos_ + 1) {
      return false;
    }
    out = cell.value;
    // Free the cell for the producer one lap ahead.
    cell.seq.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    return true;
  }

  /// Consumer side: blocking pop. Parks on the NEXT cell's sequence word
  /// (futex wait) while the ring is empty — only a producer publishing
  /// into exactly that cell wakes this worker.
  T pop_wait() {
    Cell& cell = cells_[dequeue_pos_ & mask_];
    const std::uint64_t ready = dequeue_pos_ + 1;
    std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    while (seq != ready) {
      cell.seq.wait(seq, std::memory_order_acquire);
      seq = cell.seq.load(std::memory_order_acquire);
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      if (seq != ready) {
        spurious_wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    T out = cell.value;
    cell.seq.store(dequeue_pos_ + mask_ + 1, std::memory_order_release);
    ++dequeue_pos_;
    return out;
  }

  MailboxStats stats() const {
    MailboxStats s;
    s.enqueued = enqueued_.load(std::memory_order_relaxed);
    s.wakeups = wakeups_.load(std::memory_order_relaxed);
    s.spurious_wakeups = spurious_wakeups_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producer ticket — its own cache line so fan-out stores never bounce
  /// the consumer's dequeue cursor.
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::uint64_t dequeue_pos_ = 0;  ///< consumer-private
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> spurious_wakeups_{0};
};

}  // namespace fpisa::cluster
