#include "cluster/shard_router.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/rng.h"

namespace fpisa::cluster {

const char* routing_policy_name(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kHash: return "hash";
    case RoutingPolicy::kRange: return "range";
  }
  return "?";
}

ShardRouter::ShardRouter(int num_shards, RoutingPolicy policy,
                         std::uint64_t salt)
    : num_shards_(num_shards), policy_(policy), salt_(salt) {
  if (num_shards <= 0) throw std::invalid_argument("num_shards must be > 0");
}

int ShardRouter::route(std::size_t chunk, std::size_t total_chunks) const {
  assert(chunk < total_chunks);
  if (num_shards_ == 1) return 0;
  switch (policy_) {
    case RoutingPolicy::kHash: {
      std::uint64_t state = static_cast<std::uint64_t>(chunk) ^ salt_;
      return static_cast<int>(util::splitmix64(state) %
                              static_cast<std::uint64_t>(num_shards_));
    }
    case RoutingPolicy::kRange: {
      // Contiguous blocks, remainder spread over the leading shards.
      const std::size_t shards = static_cast<std::size_t>(num_shards_);
      const std::size_t base = total_chunks / shards;
      const std::size_t extra = total_chunks % shards;
      const std::size_t boundary = extra * (base + 1);
      if (chunk < boundary) {
        return static_cast<int>(chunk / (base + 1));
      }
      return static_cast<int>(extra + (chunk - boundary) / base);
    }
  }
  return 0;
}

std::vector<std::vector<std::size_t>> ShardRouter::partition(
    std::size_t total_chunks) const {
  std::vector<std::vector<std::size_t>> out(
      static_cast<std::size_t>(num_shards_));
  for (std::size_t c = 0; c < total_chunks; ++c) {
    out[static_cast<std::size_t>(route(c, total_chunks))].push_back(c);
  }
  return out;
}

std::vector<std::vector<std::size_t>> ShardRouter::reroute(
    std::span<const std::size_t> chunks, int dead_shard,
    std::span<const int> alive) const {
  if (alive.empty()) {
    throw std::invalid_argument("reroute: no surviving shards");
  }
  std::vector<std::vector<std::size_t>> out(
      static_cast<std::size_t>(num_shards_));
  for (const std::size_t c : chunks) {
    // Mix the dead shard's id into the hash so the failover placement of a
    // chunk is decorrelated from its primary placement (and from other
    // shards' failovers), while staying a pure function of (chunk, salt,
    // dead_shard).
    std::uint64_t state = static_cast<std::uint64_t>(c) ^ salt_ ^
                          ((static_cast<std::uint64_t>(dead_shard) + 1) *
                           0x9e3779b97f4a7c15ULL);
    const std::size_t pick = static_cast<std::size_t>(
        util::splitmix64(state) % static_cast<std::uint64_t>(alive.size()));
    const int target = alive[pick];
    assert(target != dead_shard && target >= 0 && target < num_shards_);
    out[static_cast<std::size_t>(target)].push_back(c);
  }
  return out;
}

std::vector<std::vector<std::size_t>> ShardRouter::reroute(
    std::span<const std::size_t> chunks, int dead_shard) const {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    if (s != dead_shard) alive.push_back(s);
  }
  return reroute(chunks, dead_shard, alive);
}

SlotRangeAllocator::SlotRangeAllocator(std::size_t total_slots)
    : total_(total_slots) {
  if (total_slots == 0) throw std::invalid_argument("need at least one slot");
  free_.push_back({0, total_slots});
}

std::size_t SlotRangeAllocator::free_slots() const {
  std::size_t n = 0;
  for (const SlotRange& r : free_) n += r.size();
  return n;
}

std::optional<SlotRange> SlotRangeAllocator::allocate(std::size_t want) {
  if (want == 0 || free_.empty()) return std::nullopt;
  // First fit at the requested size; otherwise the largest block we have.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].size() >= want) {
      best = i;
      break;
    }
    if (best == free_.size() || free_[i].size() > free_[best].size()) {
      best = i;
    }
  }
  SlotRange& block = free_[best];
  const std::size_t take = std::min(want, block.size());
  const SlotRange out{block.lo, block.lo + take};
  block.lo += take;
  if (block.empty()) free_.erase(free_.begin() + static_cast<long>(best));
  return out;
}

void SlotRangeAllocator::release(const SlotRange& r) {
  if (r.empty()) return;
  assert(r.hi <= total_);
  const auto it = std::lower_bound(
      free_.begin(), free_.end(), r,
      [](const SlotRange& a, const SlotRange& b) { return a.lo < b.lo; });
  const auto pos = free_.insert(it, r);
  const std::size_t i = static_cast<std::size_t>(pos - free_.begin());
  // Coalesce with the right neighbour, then the left.
  if (i + 1 < free_.size() && free_[i].hi == free_[i + 1].lo) {
    free_[i].hi = free_[i + 1].hi;
    free_.erase(free_.begin() + static_cast<long>(i) + 1);
  }
  if (i > 0 && free_[i - 1].hi == free_[i].lo) {
    free_[i - 1].hi = free_[i].hi;
    free_.erase(free_.begin() + static_cast<long>(i));
  }
}

}  // namespace fpisa::cluster
