// Per-tenant SLO accounting for aggregation fabrics: job outcome counts
// (completed / failed / completed-only-via-failover) plus p50/p99 job wall
// time from a small deterministic reservoir. The cluster service keeps one
// accumulator per tenant; collective::Communicator keeps the same shape
// for every backend so frameworks read one SLO surface regardless of
// fabric.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace fpisa::cluster {

/// Snapshot handed to callers; percentiles are computed at snapshot time.
struct TenantSlo {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  /// Completed jobs that needed at least one failover retry pass.
  std::uint64_t jobs_failed_over = 0;
  /// Jobs turned away at admission (rate limit / queue bound / deadline).
  /// Distinct from jobs_failed: a rejected job never ran, sent no packets
  /// and books no wall time — mixing the two would corrupt the
  /// failed-vs-cumulative invariant the fabric accounting tests pin.
  std::uint64_t jobs_rejected = 0;
  double p50_wall_s = 0.0;  ///< over completed jobs' wall times
  double p99_wall_s = 0.0;
};

/// Mutable accumulator behind a per-tenant SLO entry. Not internally
/// synchronized — the owner (service / communicator) provides locking.
class SloAccumulator {
 public:
  void record(double wall_s, bool completed, bool failed_over) {
    if (!completed) {
      ++slo_.jobs_failed;
      return;
    }
    ++slo_.jobs_completed;
    if (failed_over) ++slo_.jobs_failed_over;
    wall_.add(wall_s);
  }

  /// Admission rejection: its own book entry — never jobs_failed, and no
  /// wall sample (the job never ran).
  void record_rejected() { ++slo_.jobs_rejected; }

  TenantSlo snapshot() const {
    TenantSlo s = slo_;
    const std::vector<double> sorted = wall_.sorted_samples();
    s.p50_wall_s = util::sorted_percentile(sorted, 0.50);
    s.p99_wall_s = util::sorted_percentile(sorted, 0.99);
    return s;
  }

 private:
  TenantSlo slo_;
  util::Reservoir wall_;
};

}  // namespace fpisa::cluster
