#include "cluster/shard_health.h"

#include <algorithm>

namespace fpisa::cluster {

ShardHealth::ShardHealth(int num_shards, int max_consecutive_failures)
    : shards_(static_cast<std::size_t>(std::max(num_shards, 0))),
      threshold_(std::max(max_consecutive_failures, 1)) {
  if (num_shards <= 0) {
    throw std::invalid_argument("shard health: need at least one shard");
  }
}

bool ShardHealth::alive(int shard) const {
  util::LockGuard lk(mu_);
  return shards_[static_cast<std::size_t>(shard)].alive;
}

int ShardHealth::num_alive() const {
  util::LockGuard lk(mu_);
  int n = 0;
  for (const State& s : shards_) n += s.alive ? 1 : 0;
  return n;
}

std::vector<int> ShardHealth::alive_shards() const {
  util::LockGuard lk(mu_);
  std::vector<int> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].alive) out.push_back(static_cast<int>(s));
  }
  return out;
}

bool ShardHealth::record_failure(int shard) {
  util::LockGuard lk(mu_);
  State& s = shards_[static_cast<std::size_t>(shard)];
  ++s.total;
  ++s.consecutive;
  if (s.alive && s.consecutive >= static_cast<std::uint64_t>(threshold_)) {
    s.alive = false;
    ++deaths_;
  }
  return !s.alive;
}

void ShardHealth::record_success(int shard) {
  util::LockGuard lk(mu_);
  shards_[static_cast<std::size_t>(shard)].consecutive = 0;
}

void ShardHealth::mark_dead(int shard) {
  util::LockGuard lk(mu_);
  State& s = shards_[static_cast<std::size_t>(shard)];
  if (s.alive) {
    s.alive = false;
    ++deaths_;
  }
}

std::uint64_t ShardHealth::consecutive_failures(int shard) const {
  util::LockGuard lk(mu_);
  return shards_[static_cast<std::size_t>(shard)].consecutive;
}

std::uint64_t ShardHealth::total_failures(int shard) const {
  util::LockGuard lk(mu_);
  return shards_[static_cast<std::size_t>(shard)].total;
}

std::uint64_t ShardHealth::deaths() const {
  util::LockGuard lk(mu_);
  return deaths_;
}

}  // namespace fpisa::cluster
