#include "cluster/hierarchy.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

#include "core/packed.h"

namespace fpisa::cluster {
namespace {

pisa::FpisaProgramOptions tree_program_options(const HierarchyOptions& opts) {
  pisa::FpisaProgramOptions p;
  p.variant = opts.switch_config.ext.rsaw ? core::Variant::kFull
                                          : core::Variant::kApproximate;
  p.lanes = opts.lanes;
  p.slots = opts.slots;
  p.num_workers = 32;
  return p;
}

}  // namespace

HierarchicalAggregator::HierarchicalAggregator(HierarchyOptions opts)
    : opts_(opts) {
  if (opts_.leaves <= 0 || opts_.workers_per_leaf <= 0) {
    throw std::invalid_argument("hierarchy: need leaves and workers");
  }
  if (opts_.leaves > 32 || opts_.workers_per_leaf > 32) {
    throw std::invalid_argument("hierarchy: bitmap is 32 bits wide");
  }
  for (int j = 0; j < opts_.leaves; ++j) {
    leaves_.push_back(std::make_unique<pisa::FpisaSwitch>(
        opts_.switch_config, tree_program_options(opts_)));
  }
  HierarchyOptions spine_opts = opts_;
  if (opts_.full_fpisa_spine) {
    spine_opts.switch_config.ext.rsaw = true;
    spine_opts.switch_config.ext.two_operand_shift = true;
  }
  spine_ = std::make_unique<pisa::FpisaSwitch>(
      spine_opts.switch_config, tree_program_options(spine_opts));
  leaf_alive_.assign(static_cast<std::size_t>(opts_.leaves), true);
  init_metrics();
}

void HierarchicalAggregator::init_metrics() {
  static std::atomic<std::uint64_t> next_id{0};
  const std::string tree =
      std::to_string(next_id.fetch_add(1, std::memory_order_relaxed));
  auto& reg = telemetry::registry();
  const auto bounds = telemetry::MetricsRegistry::time_buckets();
  m_reduces_ = &reg.counter("tree_reduces_total", {{"tree", tree}});
  m_packets_ = &reg.counter("tree_packets_total", {{"tree", tree}});
  m_wire_bytes_ = &reg.counter("tree_wire_bytes_total", {{"tree", tree}});
  m_alive_leaves_ = &reg.gauge("tree_alive_leaves", {{"tree", tree}});
  m_level_[0] = &reg.histogram("tree_level_seconds",
                               {{"tree", tree}, {"level", "leaf"}}, bounds);
  m_level_[1] = &reg.histogram("tree_level_seconds",
                               {{"tree", tree}, {"level", "spine"}}, bounds);
  m_alive_leaves_->set(static_cast<double>(opts_.leaves));
}

telemetry::PhaseBreakdown HierarchicalAggregator::phase_breakdown() const {
  return {m_level_[0]->sum(), m_level_[1]->sum()};
}

bool HierarchicalAggregator::leaf_alive(int i) const {
  if (i < 0 || i >= opts_.leaves) {
    throw std::invalid_argument("hierarchy: leaf_alive: unknown leaf");
  }
  return leaf_alive_[static_cast<std::size_t>(i)];
}

int HierarchicalAggregator::alive_leaves() const {
  int n = 0;
  for (const bool a : leaf_alive_) n += a ? 1 : 0;
  return n;
}

void HierarchicalAggregator::kill_leaf(int i) {
  if (i < 0 || i >= opts_.leaves) {
    throw std::invalid_argument("hierarchy: kill_leaf: unknown leaf");
  }
  if (!leaf_alive_[static_cast<std::size_t>(i)]) return;
  // Dead leaves' workers send straight to the spine with bitmap ids above
  // the leaf-partial ids [0, leaves); the spine's bitmap is 32 bits wide.
  const int dead_workers =
      (opts_.leaves - alive_leaves() + 1) * opts_.workers_per_leaf;
  if (opts_.leaves + dead_workers > 32) {
    throw std::invalid_argument(
        "hierarchy: kill_leaf: spine bitmap cannot fit the leaf's workers");
  }
  if (alive_leaves() == 1) {
    throw std::invalid_argument("hierarchy: cannot kill the last leaf");
  }
  leaf_alive_[static_cast<std::size_t>(i)] = false;
  m_alive_leaves_->set(static_cast<double>(alive_leaves()));
}

std::size_t HierarchicalAggregator::packet_bytes() const {
  return static_cast<std::size_t>(pisa::kFpisaHeaderBytes) +
         4u * static_cast<std::size_t>(opts_.lanes) +
         opts_.frame_overhead_bytes;
}

std::vector<float> HierarchicalAggregator::reduce(
    std::span<const std::vector<float>> workers) {
  const std::vector<std::span<const float>> views(workers.begin(),
                                                  workers.end());
  std::vector<float> result(workers.empty() ? 0 : workers.front().size(),
                            0.0f);
  reduce_into(views, result);
  return result;
}

void HierarchicalAggregator::reduce_into(
    std::span<const std::span<const float>> workers, std::span<float> result) {
  const int wpl = opts_.workers_per_leaf;
  if (static_cast<int>(workers.size()) != total_workers()) {
    throw std::invalid_argument("hierarchy: wrong worker count");
  }
  const std::size_t n = workers.front().size();
  for (const auto w : workers) {
    if (w.size() != n) {
      throw std::invalid_argument("hierarchy: worker vectors differ");
    }
  }
  if (result.size() != n) {
    throw std::invalid_argument("hierarchy: out span length mismatch");
  }
  std::fill(result.begin(), result.end(), 0.0f);

  const auto lanes = static_cast<std::size_t>(opts_.lanes);
  const std::size_t chunks = (n + lanes - 1) / lanes;

  // --- timing substrate: one uplink per host, one per ToR, one result
  // downlink per ToR. Workers stream back-to-back from t = 0; the tree's
  // slot pool is assumed deep enough to keep every pipe full.
  const auto nl = static_cast<std::size_t>(opts_.leaves);
  net::EventSim sim;
  std::vector<net::Link> worker_up(
      static_cast<std::size_t>(total_workers()),
      net::Link(opts_.link_gbps, opts_.link_latency_us));
  std::vector<net::Link> tor_up(nl,
                                net::Link(opts_.link_gbps, opts_.link_latency_us));
  std::vector<net::Link> spine_down(
      nl, net::Link(opts_.link_gbps, opts_.link_latency_us));
  // Every switch's packet-processing pipeline is SHARED across its ingress
  // ports: worker packets serialize through their ToR's pipe, and ToR
  // partials through the spine's, before contributing. This is the
  // topology-dependent term — with few leaves the links dominate, with
  // more fan-in the shared pipes do. (Plain locals: every scheduled event
  // runs inside sim.run() below, before these leave scope.)
  std::vector<net::Link> leaf_pipe(nl, net::Link(opts_.pipeline_gbps, 0.0));
  net::Link spine_pipe(opts_.pipeline_gbps, 0.0);
  std::vector<int> spine_seen(chunks, 0);
  HierarchyTiming timing{};
  std::vector<std::uint32_t> vals(lanes);

  // Dead-leaf collapse: a killed ToR's workers bypass it and feed the spine
  // directly. Their spine bitmap ids sit above the leaf-partial ids
  // [0, leaves): dead leaf j's worker k sends as `dead_base[j] + k`.
  // Capacity was checked at kill_leaf time.
  std::vector<int> dead_base(nl, -1);
  int next_direct_id = opts_.leaves;
  int spine_arrivals_per_chunk = 0;
  for (int j = 0; j < opts_.leaves; ++j) {
    if (leaf_alive_[static_cast<std::size_t>(j)]) {
      ++spine_arrivals_per_chunk;  // one partial per live ToR
    } else {
      dead_base[static_cast<std::size_t>(j)] = next_direct_id;
      next_direct_id += wpl;
      spine_arrivals_per_chunk += wpl;  // every worker sends directly
    }
  }

  // One spine arrival has cleared the shared pipeline: completes the chunk
  // once every expected flow (live partials + direct senders) is in.
  const auto spine_arrival = [this, &sim, &spine_down, &spine_seen, &timing,
                              &spine_pipe,
                              spine_arrivals_per_chunk](std::size_t c) {
    const double processed = spine_pipe.send(sim.now(), packet_bytes());
    sim.at(processed, [this, &sim, &spine_down, &spine_seen, &timing, c,
                       spine_arrivals_per_chunk] {
      if (++spine_seen[c] < spine_arrivals_per_chunk) return;
      // Chunk complete at the spine: multicast the result back down
      // (spine->ToR serialization + the ToR->host hop latency).
      for (std::size_t d = 0; d < spine_down.size(); ++d) {
        const double delivered =
            spine_down[d].send(sim.now(), packet_bytes()) +
            opts_.link_latency_us * 1e-6;
        ++timing.packets;
        timing.done_s = std::max(timing.done_s, delivered);
      }
    });
  };

  for (std::size_t base = 0; base < chunks; base += opts_.slots) {
    const std::size_t wave_end = std::min(base + opts_.slots, chunks);
    // Leaf phase: every host streams its packet to its ToR (or, when its
    // ToR is dead, straight into the spine fan-in).
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      for (int j = 0; j < opts_.leaves; ++j) {
        const bool alive = leaf_alive_[static_cast<std::size_t>(j)];
        double leaf_ready = 0.0;
        for (int k = 0; k < wpl; ++k) {
          const int w = j * wpl + k;
          if (alive) {
            for (std::size_t l = 0; l < lanes; ++l) {
              const std::size_t i = c * lanes + l;
              vals[l] = i < n ? core::fp32_bits(
                                    workers[static_cast<std::size_t>(w)][i])
                              : 0;
            }
            (void)leaves_[static_cast<std::size_t>(j)]->add(
                slot, static_cast<std::uint8_t>(k), vals);
            const double at_tor = worker_up[static_cast<std::size_t>(w)].send(
                0.0, packet_bytes());
            leaf_ready = std::max(
                leaf_ready, leaf_pipe[static_cast<std::size_t>(j)].send(
                                at_tor, packet_bytes()));
          } else {
            // Collapse: the worker's uplink terminates at the spine; its
            // payload is packed in the functional spine phase below.
            const double at_spine =
                worker_up[static_cast<std::size_t>(w)].send(0.0,
                                                            packet_bytes());
            sim.at(at_spine, [&spine_arrival, c] { spine_arrival(c); });
          }
          ++timing.packets;
        }
        if (!alive) continue;
        // ToR forwards its partial to the spine once the last contributing
        // host packet has arrived.
        sim.at(leaf_ready,
               [this, &sim, &tor_up, &timing, &spine_arrival, c, j] {
          const double at_spine =
              tor_up[static_cast<std::size_t>(j)].send(sim.now(),
                                                       packet_bytes());
          ++timing.packets;
          timing.leaf_done_s = std::max(timing.leaf_done_s, sim.now());
          sim.at(at_spine, [&spine_arrival, c] { spine_arrival(c); });
        });
      }
    }
    // Spine phase (functional): combine live-leaf partials and dead
    // leaves' direct worker packets, collect results. Arrival order at the
    // spine register is leaf order, with a dead leaf's workers standing in
    // ToR-worker order where its partial would have been.
    for (std::size_t c = base; c < wave_end; ++c) {
      const auto slot = static_cast<std::uint16_t>(c - base);
      for (int j = 0; j < opts_.leaves; ++j) {
        if (leaf_alive_[static_cast<std::size_t>(j)]) {
          const pisa::FpisaResult partial =
              leaves_[static_cast<std::size_t>(j)]->read_and_reset(slot);
          (void)spine_->add(slot, static_cast<std::uint8_t>(j),
                            partial.values);
          continue;
        }
        for (int k = 0; k < wpl; ++k) {
          const int w = j * wpl + k;
          for (std::size_t l = 0; l < lanes; ++l) {
            const std::size_t i = c * lanes + l;
            vals[l] = i < n ? core::fp32_bits(
                                  workers[static_cast<std::size_t>(w)][i])
                            : 0;
          }
          (void)spine_->add(
              slot,
              static_cast<std::uint8_t>(dead_base[static_cast<std::size_t>(j)] +
                                        k),
              vals);
        }
      }
      const pisa::FpisaResult combined = spine_->read_and_reset(slot);
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t i = c * lanes + l;
        if (i < n) result[i] = core::fp32_value(combined.values[l]);
      }
    }
  }
  sim.run();
  timing.wire_bytes = timing.packets * packet_bytes();
  timing_ = timing;

  // Registry: per-level fan-in time for THIS reduce (modeled seconds —
  // leaf level is the host->ToR fan-in until the last partial is handed
  // up; spine level is everything after) plus traffic deltas.
  m_reduces_->inc();
  m_packets_->inc(timing.packets);
  m_wire_bytes_->inc(timing.wire_bytes);
  m_level_[0]->observe(timing.leaf_done_s);
  m_level_[1]->observe(std::max(0.0, timing.done_s - timing.leaf_done_s));
}

HierarchyTiming flat_baseline_timing(const HierarchyOptions& opts,
                                     std::size_t n_values) {
  const int total = opts.leaves * opts.workers_per_leaf;
  const auto lanes = static_cast<std::size_t>(opts.lanes);
  const std::size_t chunks = (n_values + lanes - 1) / lanes;
  const std::size_t pkt = static_cast<std::size_t>(pisa::kFpisaHeaderBytes) +
                          4u * lanes + opts.frame_overhead_bytes;

  std::vector<net::Link> up(static_cast<std::size_t>(total),
                            net::Link(opts.link_gbps, opts.link_latency_us));
  std::vector<net::Link> down(static_cast<std::size_t>(total),
                              net::Link(opts.link_gbps, opts.link_latency_us));
  // One shared packet-processing pipeline for the flat switch: every
  // worker's packet serializes through it, so fan-in (total workers) is
  // the flat topology's bottleneck — the term the tree's two levels split.
  net::Link pipe(opts.pipeline_gbps, 0.0);
  HierarchyTiming t{};
  for (std::size_t c = 0; c < chunks; ++c) {
    double arrived = 0.0;
    for (int w = 0; w < total; ++w) {
      const double at_switch = up[static_cast<std::size_t>(w)].send(0.0, pkt);
      arrived = std::max(arrived, pipe.send(at_switch, pkt));
      ++t.packets;
    }
    t.leaf_done_s = std::max(t.leaf_done_s, arrived);
    for (int w = 0; w < total; ++w) {
      const double delivered =
          down[static_cast<std::size_t>(w)].send(arrived, pkt);
      ++t.packets;
      t.done_s = std::max(t.done_s, delivered);
    }
  }
  t.wire_bytes = t.packets * pkt;
  return t;
}

}  // namespace fpisa::cluster
