// Two-level ToR -> spine aggregation tree (rack scale): N leaf switches
// each partially aggregate the workers in their rack, and one spine switch
// combines the leaf partials. Functionally this drives real
// pisa::FpisaSwitch pipelines at both levels; timing is modeled with
// net::EventSim / net::Link (worker uplinks, ToR uplinks, result return),
// extending the paper's single-switch goodput argument to a rack.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/event_sim.h"
#include "pisa/fpisa_program.h"
#include "telemetry/metrics.h"

namespace fpisa::cluster {

struct HierarchyOptions {
  int leaves = 4;            ///< ToR switches
  int workers_per_leaf = 2;  ///< hosts homed on each ToR
  std::size_t slots = 64;    ///< aggregation slots per switch
  int lanes = 1;             ///< FP values per packet
  pisa::SwitchConfig switch_config;  ///< applied to the leaf switches
  /// Run the spine on the §4.2 extended switch (RSAW + 2-operand shift,
  /// i.e. full FPISA) even when the leaves are baseline-Tofino FPISA-A.
  /// Composition hazard this guards against: a near-cancelled leaf partial
  /// (tiny exponent) can pin the spine's FPISA-A register scale, and the
  /// next partial's aligned mantissa then wraps the 32-bit register — a
  /// value-scale error. Full FPISA right-shifts the *stored* mantissa
  /// instead, so the spine tracks the largest incoming exponent.
  bool full_fpisa_spine = true;
  // Timing model.
  double link_gbps = 100.0;
  double link_latency_us = 1.0;
  /// Aggregate packet-processing bandwidth of one switch pipeline, shared
  /// by all of that switch's ports (a Tofino pipe serves several ports).
  /// This is what makes completion time a function of topology: the spine
  /// pipeline carries `leaves` flows, a flat switch's pipeline carries one
  /// flow per worker — fan-in eventually saturates the shared pipe.
  double pipeline_gbps = 400.0;
  std::size_t frame_overhead_bytes = 46;  ///< Ethernet+IP+UDP around payload
};

struct HierarchyTiming {
  double leaf_done_s = 0;   ///< last leaf partial handed to its ToR uplink
  double done_s = 0;        ///< last result packet delivered back to a host
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  double values_per_s(std::size_t n) const {
    return done_s > 0 ? static_cast<double>(n) / done_s : 0.0;
  }
};

class HierarchicalAggregator {
 public:
  explicit HierarchicalAggregator(HierarchyOptions opts);

  int total_workers() const {
    return opts_.leaves * opts_.workers_per_leaf;
  }
  const HierarchyOptions& options() const { return opts_; }

  /// Reduces `workers` (size == total_workers(); worker w is homed on leaf
  /// w / workers_per_leaf) through the two-level tree. Also refreshes the
  /// timing model for this reduction; see timing(). The zero-copy form
  /// reads the views in place and writes the sum into `out`; the allocating
  /// form is a thin adapter over it.
  void reduce_into(std::span<const std::span<const float>> workers,
                   std::span<float> out);
  std::vector<float> reduce(std::span<const std::vector<float>> workers);

  /// Timing of the most recent reduce().
  const HierarchyTiming& timing() const { return timing_; }

  /// Per-level fan-in timing mapped onto the stack's uniform phase split:
  /// the leaf level (host -> ToR fan-in, partials handed up) is the add
  /// phase; the spine level (partial combine + result return) the collect
  /// phase. Cumulative across reduces, summed from the registry's
  /// tree_level_seconds{tree,level} histograms — it advances only while
  /// telemetry::enabled(), like every timing instrument in the stack.
  telemetry::PhaseBreakdown phase_breakdown() const;

  /// Failover: declares ToR leaf `i` dead. Its rack's workers are collapsed
  /// into the spine fan-in — they send straight to the spine with their own
  /// bitmap ids (assigned above the leaf-partial ids), skipping the dead
  /// ToR's partial aggregation. Functionally the sum is unchanged for any
  /// grouping-insensitive input; timing-wise the spine pipeline absorbs
  /// `workers_per_leaf` flows where it used to see one. Throws when the
  /// spine's 32-bit worker bitmap cannot fit the extra direct senders.
  void kill_leaf(int i);
  bool leaf_alive(int i) const;
  int alive_leaves() const;

  pisa::FpisaSwitch& leaf(int i) { return *leaves_[static_cast<std::size_t>(i)]; }
  pisa::FpisaSwitch& spine() { return *spine_; }

  std::size_t packet_bytes() const;

 private:
  void init_metrics();

  HierarchyOptions opts_;
  std::vector<std::unique_ptr<pisa::FpisaSwitch>> leaves_;
  std::unique_ptr<pisa::FpisaSwitch> spine_;
  std::vector<bool> leaf_alive_;
  HierarchyTiming timing_{};

  // Telemetry handles ("tree" instance label), resolved once at
  // construction: modeled per-level fan-in time per reduce, packet/byte
  // accounting deltas, and a live-leaf gauge.
  telemetry::Counter* m_reduces_ = nullptr;
  telemetry::Counter* m_packets_ = nullptr;
  telemetry::Counter* m_wire_bytes_ = nullptr;
  telemetry::Gauge* m_alive_leaves_ = nullptr;
  telemetry::Histogram* m_level_[2] = {};  ///< [0]=leaf, [1]=spine
};

/// Timing of the same reduction through ONE flat switch with every worker
/// attached directly (the paper's testbed shape) — the baseline the
/// hierarchy is compared against. The flat switch needs total_workers
/// ports; the tree needs only `leaves` spine ports, which is the point.
HierarchyTiming flat_baseline_timing(const HierarchyOptions& opts,
                                     std::size_t n_values);

}  // namespace fpisa::cluster
