// Shard liveness tracking and fault injection for the rack-scale
// aggregation service. A shard that keeps exhausting retransmit budgets is
// declared dead; the service then re-routes its chunk set onto survivors
// (ShardRouter::reroute) instead of failing every tenant's job — the
// paper's rack-scale capacity argument only survives production if one
// dead switch doesn't stall the fabric.
//
// Fault injection (kill at a chosen protocol phase, or a persistent
// slowdown) exists so the failover path is exercised deterministically in
// tests and benches; the same ShardDeadError is thrown by the real
// retransmit-exhaustion path, so injected and organic deaths take the
// identical recovery route.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/ordered_mutex.h"
#include "util/thread_annotations.h"

namespace fpisa::cluster {

/// What an injected fault does to its shard.
enum class FaultKind {
  kKill,      ///< shard stops answering: packets exhaust retransmits
  kSlowdown,  ///< straggler: every wave takes extra wall time, job completes
};

/// Protocol phase at which a kKill fault fires.
enum class FaultPhase {
  kBeforeJob,   ///< before the shard task sends anything
  kMidAdd,      ///< halfway through a wave's add (submit) phase
  kMidCollect,  ///< halfway through a wave's collect phase
};

/// One injected fault. Kills are one-shot (the shard dies once); slowdowns
/// are persistent (the shard straggles on every wave until the service is
/// torn down).
struct ShardFault {
  int shard = 0;
  FaultKind kind = FaultKind::kKill;
  FaultPhase phase = FaultPhase::kBeforeJob;
  std::size_t wave = 0;       ///< wave index (within the job) a kill fires at
  double slowdown_ms = 0.0;   ///< kSlowdown: extra wall time per wave
};

/// Failover policy knobs (ClusterOptions::failover). Faults fire whether or
/// not failover is enabled — `enabled` only governs whether the service
/// recovers (re-route + retry) or surfaces the failure to the tenant.
struct FailoverOptions {
  bool enabled = false;
  /// Consecutive retransmit-exhaustion failures before a shard is declared
  /// dead (and its chunks become eligible for re-routing).
  int max_consecutive_failures = 1;
  /// Clean retry passes a single job may run after re-routing; past this
  /// the job fails even with survivors left.
  int max_reroutes_per_job = 1;
  /// Test/bench fault injection; empty in production.
  std::vector<ShardFault> faults;
};

/// Thrown when a shard stops responding (retransmit exhaustion or an
/// injected kill). Derived from std::runtime_error so pre-failover callers
/// that catch the old exception keep working; the shard id lets the
/// service attribute the death without parsing messages.
class ShardDeadError : public std::runtime_error {
 public:
  ShardDeadError(int shard, const std::string& what)
      : std::runtime_error(what), shard_(shard) {}
  int shard() const { return shard_; }

 private:
  int shard_;
};

/// Per-shard liveness state: consecutive retransmit-exhaustion failures,
/// death marking, and cumulative counters. Internally synchronized —
/// concurrent jobs report failures from the job-runner pool.
class ShardHealth {
 public:
  ShardHealth(int num_shards, int max_consecutive_failures);

  int num_shards() const FPISA_EXCLUDES(mu_) {
    util::LockGuard lk(mu_);
    return static_cast<int>(shards_.size());
  }
  bool alive(int shard) const FPISA_EXCLUDES(mu_);
  int num_alive() const FPISA_EXCLUDES(mu_);
  /// Ascending ids of every live shard.
  std::vector<int> alive_shards() const FPISA_EXCLUDES(mu_);

  /// Records one retransmit-exhaustion (or injected-kill) event; the shard
  /// is declared dead once `max_consecutive_failures` accumulate without an
  /// intervening success. Returns true when the shard is dead afterwards.
  bool record_failure(int shard) FPISA_EXCLUDES(mu_);
  /// A completed shard task: resets the consecutive-failure streak.
  void record_success(int shard) FPISA_EXCLUDES(mu_);
  /// Administrative kill (bench degraded mode, operator drain).
  void mark_dead(int shard) FPISA_EXCLUDES(mu_);

  std::uint64_t consecutive_failures(int shard) const FPISA_EXCLUDES(mu_);
  std::uint64_t total_failures(int shard) const FPISA_EXCLUDES(mu_);
  std::uint64_t deaths() const FPISA_EXCLUDES(mu_);

 private:
  struct State {
    bool alive = true;
    std::uint64_t consecutive = 0;
    std::uint64_t total = 0;
  };
  mutable util::OrderedMutex mu_{util::lock_rank::kHealth};
  std::vector<State> shards_ FPISA_GUARDED_BY(mu_);
  int threshold_;
  std::uint64_t deaths_ FPISA_GUARDED_BY(mu_) = 0;
};

}  // namespace fpisa::cluster
