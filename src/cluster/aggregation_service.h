// Rack-scale, multi-tenant aggregation service: routes reduce jobs across a
// pool of pisa::FpisaSwitch shards (element-space sharding via ShardRouter),
// drives the shards concurrently from per-shard persistent workers fed
// through lock-free mailboxes, and keeps per-tenant and per-shard protocol
// statistics. The per-shard protocol is the SwitchML-style packet loop of
// switchml::AggregationSession (add with retransmission, idempotent read,
// read-and-reset slot recycling), operating on a tenant-private SlotRange so
// concurrent jobs never collide. The wave loop runs as a two-stage software
// pipeline (encode wave N+1 while wave N's collect drains) that stays
// bit-identical to the serial reference — see README "Execution model".
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/mailbox.h"
#include "cluster/shard_health.h"
#include "cluster/shard_router.h"
#include "cluster/slo.h"
#include "fault/fault.h"
#include "pisa/fpisa_program.h"
#include "qos/admission.h"
#include "qos/qos.h"
#include "qos/scheduler.h"
#include "switchml/session.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/ordered_mutex.h"
#include "util/thread_annotations.h"

namespace fpisa::cluster {

struct ClusterOptions {
  int num_shards = 4;
  std::size_t slots_per_shard = 64;  ///< aggregation slots per shard switch
  std::size_t slots_per_job = 16;    ///< slot-range size requested per shard
  int lanes = 1;                     ///< FP values per packet
  RoutingPolicy routing = RoutingPolicy::kHash;
  std::uint64_t routing_salt = 0x5eedULL;
  double loss_rate = 0.0;            ///< per-packet drop probability (each way)
  std::uint64_t loss_seed = 1;
  int max_retransmits = 64;
  /// Deprecated (kept for source compatibility): the execution engine now
  /// runs exactly one persistent worker per shard under kWorkers dispatch —
  /// shard affinity is the point, so an arbitrary pool size no longer
  /// exists to configure.
  int worker_threads = 0;
  /// How shard tasks of a pass execute.
  ///  * kWorkers: one persistent worker thread per shard, each owning its
  ///    switch, fed through a lock-free mailbox — a pass dispatch is one
  ///    ring store + one futex wake per ACTIVE shard (idle shards sleep).
  ///  * kInline: shard tasks run sequentially on the calling job thread;
  ///    zero fan-out threads (concurrent jobs still overlap on the
  ///    job-runner pool, serialized per shard by the shard mutex).
  ///  * kAuto (default): kWorkers when the host has >1 core and the
  ///    service >1 shard; on a single-core host the handoff can only add
  ///    context switches.
  /// Results are bit-identical across modes: determinism is seeded per
  /// (job, shard, pass), never scheduled.
  enum class DispatchMode { kAuto, kWorkers, kInline };
  DispatchMode dispatch = DispatchMode::kAuto;
  /// Two-stage software pipeline in the wave loop: while the switch drains
  /// wave N's collect, the host pre-packs wave N+1's packets and pre-draws
  /// BOTH of wave N+1's loss schedules (add + collect) from the task rng.
  /// The global draw order (add0, collect0, add1, collect1, ...) is exactly
  /// the serial path's, so results AND SessionStats stay bit-identical
  /// (pinned by test_cluster_pipeline). The guarded fault protocol
  /// (fault.enabled) and the per-slot collect reference keep the serial
  /// loop: wave N+1's epoch stamps depend on wave N's collect, so the
  /// pipeline would drain every wave anyway.
  bool pipeline_waves = true;
  /// Collect phases drain each wave's slot range through one compiled
  /// read_and_reset_batch call (default) instead of per-slot read/reset
  /// round trips through the packet simulator. Identical observables —
  /// the per-slot path remains as the reference/baseline.
  bool batched_collect = true;
  /// Control threads that run submitted jobs' reduce loops (the shard work
  /// itself always shares the worker pool). Bounds the service's thread
  /// count no matter how many jobs are in flight: excess submissions queue.
  /// 0: max(2, num_shards).
  int job_runner_threads = 0;
  /// Shard-failure failover: when enabled, a shard that exhausts its
  /// retransmit budget is declared dead (after `max_consecutive_failures`),
  /// its slot range is scrubbed and released, its chunk set is re-routed
  /// onto the survivors (ShardRouter::reroute, salt-stable) and retried
  /// once cleanly — the job completes with a sum bit-identical to the
  /// no-failure run. Jobs arriving after a death route around the corpse at
  /// partition time. Also carries kill/slowdown fault injection for tests.
  FailoverOptions failover;
  /// Byzantine-wire fault injection + the guarded recovery protocol, one
  /// deterministic engine per (job, shard, pass). A switch wipe hits every
  /// shard whose local wave count reaches wipe_wave and is recovered by
  /// wave replay from the host-held gradients (replay exhaustion composes
  /// with shard failover as a ShardDeadError); a dead worker is detected at
  /// the wave deadline and — under kDegrade — recovered by replaying the
  /// WHOLE job over the survivors (shard-local wave indexing means shards
  /// with fewer waves finish before the death wave, so per-wave patching
  /// cannot excise the dead worker's earlier contributions). Requires
  /// batched_collect.
  fault::FaultOptions fault;
  /// Multi-tenant admission control & QoS (src/qos/): per-tenant token-
  /// bucket rate limits, priority classes with weighted-deficit pickup on
  /// the job-runner pool, and bounded per-tenant admission queues with
  /// explicit backpressure (AdmissionRejectedError or kBlock-with-
  /// deadline). Disabled by default — the service then behaves exactly as
  /// before: one FIFO class, no limits, unbounded queue.
  qos::QosOptions qos;
  pisa::SwitchConfig switch_config;  ///< applied to every shard
};

struct JobRequest {
  std::string tenant;
  std::vector<std::vector<float>> workers;  ///< equal-length FP32 vectors
  /// Per-tenant fabric overrides; negative means "inherit ClusterOptions"
  /// (tenants can ride links of different quality through one service).
  double loss_rate = -1.0;
  int max_retransmits = -1;
};

/// Zero-copy job description: worker gradients stay in caller-owned storage
/// and are only ever *viewed* by the service — nothing is deep-copied
/// between submission and result. For the async entry points the viewed
/// buffers (and the out span) must stay alive until the future resolves.
struct JobView {
  std::string_view tenant;
  std::span<const std::span<const float>> workers;  ///< equal-length views
  double loss_rate = -1.0;   ///< negative: inherit ClusterOptions
  int max_retransmits = -1;  ///< negative: inherit ClusterOptions
};

struct JobReport {
  std::string tenant;
  std::uint64_t job_id = 0;
  std::vector<float> result;
  switchml::SessionStats stats;                     ///< this job, all shards
  std::vector<switchml::SessionStats> per_shard;    ///< this job, per shard
};

class AggregationService {
 public:
  explicit AggregationService(ClusterOptions opts);
  ~AggregationService();
  AggregationService(const AggregationService&) = delete;
  AggregationService& operator=(const AggregationService&) = delete;

  /// Runs one reduce job to completion. Thread-safe: may be called from
  /// many tenant threads at once; shard work interleaves on the pool.
  /// Throws std::runtime_error when a packet exhausts max_retransmits.
  /// Reads `job.workers` in place — no gradient copies.
  JobReport reduce(const JobRequest& job);

  /// Zero-copy reduce: aggregates `job.workers` (views) into `out`
  /// (out.size() == worker length). The returned report's `result` is left
  /// empty — the data is already where the caller wants it.
  JobReport reduce(const JobView& job, std::span<float> out);

  /// Asynchronous submission on the bounded job-runner pool (at most
  /// `job_runner_threads` jobs execute concurrently; the rest queue).
  /// The owning form moves the request in; the view form copies only the
  /// tenant name and the span table — the caller keeps the gradient
  /// buffers and `out` alive until the future resolves.
  std::future<JobReport> submit(JobRequest job);
  std::future<JobReport> submit(const JobView& job, std::span<float> out);

  const ClusterOptions& options() const { return opts_; }
  const ShardRouter& router() const { return router_; }
  int num_shards() const { return opts_.num_shards; }

  /// Cumulative protocol stats across all jobs (completed AND failed —
  /// failed jobs' packets crossed the wire too, so packet accounting always
  /// matches the fabric; job outcomes are counted separately below).
  /// The const snapshot accessors below lock stats_mu_ (and the
  /// queue-depth probes job_mu_); the FPISA_EXCLUDES annotations pin the
  /// PR 9 reject-path rule — accounting paths may hold at most one of
  /// job_mu_/stats_mu_ — at compile time on the clang CI leg.
  switchml::SessionStats shard_stats(int shard) const
      FPISA_EXCLUDES(stats_mu_);
  /// Heterogeneous lookup: string_view / literals hit the map without a
  /// temporary std::string.
  switchml::SessionStats tenant_stats(std::string_view tenant) const
      FPISA_EXCLUDES(stats_mu_);
  switchml::SessionStats total_stats() const FPISA_EXCLUDES(stats_mu_);
  std::vector<std::string> tenants() const FPISA_EXCLUDES(stats_mu_);
  std::uint64_t jobs_completed() const FPISA_EXCLUDES(stats_mu_);
  std::uint64_t jobs_failed() const FPISA_EXCLUDES(stats_mu_);
  /// Jobs turned away at admission (QoS only; never counted as failed —
  /// a rejected job ran no protocol and sent no packets).
  std::uint64_t jobs_rejected() const FPISA_EXCLUDES(stats_mu_);

  /// Per-tenant SLO snapshot: job outcome counts (completed / failed /
  /// completed-only-via-failover) and p50/p99 job wall time from a small
  /// reservoir.
  TenantSlo tenant_slo(std::string_view tenant) const
      FPISA_EXCLUDES(stats_mu_);

  /// Shard liveness (consecutive-failure tracking, deaths).
  const ShardHealth& health() const { return health_; }
  /// Administrative kill: marks the shard dead immediately; subsequent
  /// jobs route around it (degraded N-1 mode). Requires failover.enabled.
  void kill_shard(int shard);

  /// Cumulative wall time the shard tasks spent in each wave phase across
  /// all completed work (submit/add vs collect) — the phase split that
  /// bench_cluster_throughput reports. Since the telemetry layer landed,
  /// this is a VIEW over the registry's per-shard phase histograms
  /// (cluster_shard_phase_seconds{svc,shard,phase}); it advances only
  /// while telemetry::enabled() — the same condition under which any of
  /// the stack's timing instruments record.
  struct PhaseBreakdown {
    double add_s = 0;
    double collect_s = 0;
  };
  PhaseBreakdown phase_breakdown() const;

  /// Opt-in span tracing: while attached, every job records its life as a
  /// nested span tree (job → submit → partition → acquire_slots → pass →
  /// per-shard add/collect waves → merge, plus failover passes) into
  /// `trace`, rooted under `parent`. The wave spans reuse the exact clock
  /// readings that feed the phase histograms, so traced wall times agree
  /// with phase_breakdown() to the nanosecond. Pass nullptr to detach.
  /// The caller owns the trace and must keep it alive while attached (and
  /// must not detach while jobs are in flight).
  void attach_trace(telemetry::Trace* trace,
                    telemetry::Trace::SpanId parent = telemetry::Trace::kNone);

  /// Job-runner sizing and high-water mark: how many reduce loops ever ran
  /// at once (submitted + synchronous). With submit() alone this can never
  /// exceed job_runner_threads() — the burst test pins that down.
  int job_runner_threads() const {
    return static_cast<int>(job_pool_.size());
  }
  std::uint64_t peak_concurrent_jobs() const {
    return peak_jobs_.load(std::memory_order_relaxed);
  }

  /// Per-shard mailbox counters under kWorkers dispatch: tickets posted,
  /// consumer wakeups, and wakeups that found no ticket. A pass notifies
  /// only the shards it fed, so an idle shard's wakeup count never moves
  /// and spurious wakeups stay zero — both pinned by regression tests.
  /// All-zero under inline dispatch (there are no workers to wake).
  MailboxStats mailbox_stats(int shard) const;
  /// The dispatch mode actually running (kAuto resolved at construction).
  ClusterOptions::DispatchMode dispatch_mode() const {
    return inline_dispatch_ ? ClusterOptions::DispatchMode::kInline
                            : ClusterOptions::DispatchMode::kWorkers;
  }

  /// QoS admission snapshot for one tenant: jobs currently queued
  /// (admitted, not yet picked up) — 0 when QoS is off or the tenant is
  /// unknown.
  std::size_t tenant_queue_depth(std::string_view tenant) const
      FPISA_EXCLUDES(job_mu_, stats_mu_);
  /// Scheduler pickup count per class (how many queued jobs each Priority
  /// class has had dequeued). All zero when QoS is off.
  std::uint64_t class_picks(qos::Priority p) const
      FPISA_EXCLUDES(job_mu_, stats_mu_);

 private:
  /// Cache-line-aligned so two shards' hot state (switch, mutex, allocator)
  /// can never share a line even if the unique_ptr allocations land
  /// adjacent.
  struct alignas(64) Shard {
    explicit Shard(const ClusterOptions& opts);
    pisa::FpisaSwitch sw FPISA_GUARDED_BY(mu);
    /// Serializes packet roundtrips through `sw`. Rank kShard: legally
    /// nests under stats_mu_ (shard_stats/total_stats read under both).
    util::OrderedMutex mu{util::lock_rank::kShard};
    SlotRangeAllocator slots;      ///< guarded by the service's alloc_mu_
    switchml::SessionStats stats;  ///< cumulative, guarded by stats_mu_
  };

  /// Effective per-job fabric parameters (ClusterOptions + JobRequest
  /// overrides).
  struct JobParams {
    double loss_rate = 0.0;
    int max_retransmits = 0;
  };

  /// One wave's queued packet stream (arrival order), applied to the
  /// switch in a single add_batch under one mutex hold.
  struct PacketQueue {
    std::vector<std::uint16_t> slots;
    std::vector<std::uint8_t> workers;
    std::vector<std::uint32_t> values;
    bool empty() const { return slots.empty(); }
    void clear() {
      slots.clear();
      workers.clear();
      values.clear();
    }
  };

  /// Per-task scratch: every buffer the wave loop needs, reused across
  /// waves so the shard workers do no per-packet allocation at all.
  struct WaveScratch {
    PacketQueue pkts;
    std::vector<std::uint32_t> lane_buf;
    /// One preallocated result buffer per shard task (wave slots × lanes):
    /// the batched collect reads the whole wave into it instead of per-slot
    /// FpisaResult round trips through the packet sim.
    std::vector<std::uint32_t> wave_values;
    pisa::FpisaResult result_buf;
    /// Guarded-protocol state (fault injection only): the host-side mirror
    /// of the range's slot stamps, bitmap scratch for the wave completeness
    /// probe, and stamp/checksum columns for wave replay after state loss.
    std::vector<std::uint32_t> stamps;
    std::vector<std::uint32_t> bitmaps;
    std::vector<std::uint32_t> replay_stamps;
    std::vector<std::uint16_t> replay_checksums;
    std::uint16_t mirror_generation = 0;
  };

  /// One pre-packed wave for the pipelined loop: the packet stream plus the
  /// wave's pre-drawn collect schedule (stage 1's complete output). Two of
  /// these ping-pong per shard task: while the switch drains bank A's
  /// collect, the host encodes bank B.
  struct WaveBank {
    PacketQueue pkts;
    switchml::CollectSchedule sched{};
    std::size_t base = 0;
    std::size_t end = 0;
    std::size_t index = 0;
    bool sched_drawn = false;   ///< false: the wave dies before its collect
    bool add_failed = false;    ///< a packet exhausted its retransmit budget
    bool kill_pending = false;  ///< an injected kMidCollect kill awaits
    std::uint64_t encode_ns = 0;  ///< host pack time (add-phase share)
  };

  /// One in-flight fan-out/join: lives on the dispatching frame's stack,
  /// workers reach it through their mailbox ticket. Each shard writes ONLY
  /// its own cache-line-aligned slot; the joining thread merges after the
  /// join — no cross-shard false sharing, no shared-state writes from
  /// workers.
  struct PassContext;
  struct PassTicket {
    PassContext* ctx = nullptr;
    bool stop = false;
  };
  /// Per-shard persistent worker: owns its shard's switch work for every
  /// pass, fed through a lock-free mailbox. Aligned so two workers' ring
  /// cursors never share a line.
  struct alignas(64) ShardWorker {
    ShardMailbox<PassTicket> mailbox;
    std::thread thread;
  };

  void shard_worker_loop(int shard);
  /// Runs one shard's slice of a pass (rng + fault engine seeded per (job,
  /// shard, pass)); errors land in the shard's PassContext slot.
  void run_pass_task(PassContext& ctx, int shard);
  void job_runner_loop();
  /// Runs one job end to end (validation, range acquisition, shard fan-out,
  /// failover recovery, accounting), writing the sum into `out`. Both
  /// reduce() overloads and every submit path land here — admission happens
  /// strictly BEFORE this point, so the datapath never sees QoS.
  void run_job(const JobView& job, std::span<float> out, JobReport& report);
  /// reduce(JobRequest) minus admission: the submit path's runner body
  /// (its job was admitted at enqueue time; admitting again at pickup
  /// would double-charge the tenant's bucket).
  JobReport reduce_admitted(const JobRequest& job);
  std::future<JobReport> enqueue_job(std::string_view tenant,
                                     std::function<JobReport()> fn);
  /// QoS admission for an async submission: charges the tenant's token
  /// bucket and queue bound; returns the tenant's Priority class for the
  /// scheduler push. kReject (or an expired kBlock deadline) records the
  /// rejection and throws AdmissionRejectedError; kBlock waits on
  /// admission_cv_. Caller holds job_mu_ via `lk`; on throw the lock has
  /// been released. No-QoS mode returns kQuery without touching state.
  qos::Priority admit_queued(util::UniqueLock& lk, std::string_view tenant)
      FPISA_REQUIRES(job_mu_) FPISA_EXCLUDES(stats_mu_);
  /// QoS admission for a synchronous reduce(): rate limit only (the job
  /// runs inline on the caller's thread — queue bounds don't apply).
  void admit_direct(std::string_view tenant)
      FPISA_EXCLUDES(job_mu_, stats_mu_);
  /// Books a rejection (SLO entry + jobs_rejected + registry counters) and
  /// throws AdmissionRejectedError. `lk` (job_mu_) is released first:
  /// rejection accounting takes stats_mu_ and the two must never nest —
  /// stated by the RELEASE/EXCLUDES pair, enforced dynamically by their
  /// shared lock rank.
  [[noreturn]] void reject_job(util::UniqueLock& lk, std::string_view tenant,
                               qos::RejectReason reason)
      FPISA_RELEASE(job_mu_) FPISA_EXCLUDES(stats_mu_);
  /// Refreshes the queue-depth gauges (total + per-class). Caller holds
  /// job_mu_.
  void refresh_queue_gauges() FPISA_REQUIRES(job_mu_);
  /// One fan-out/join pass: a task per shard with chunks, stats merged into
  /// `report.per_shard`. Returns one exception slot per shard (null =
  /// succeeded or inactive). `pass` salts the per-task loss streams so a
  /// retry pass draws fresh, deterministic schedules.
  std::vector<std::exception_ptr> run_pass(
      const std::vector<std::vector<std::size_t>>& parts,
      const std::vector<SlotRange>& ranges,
      std::span<const std::span<const float>> workers, std::span<float> out,
      const JobParams& params, std::uint64_t job_id, std::uint64_t pass,
      std::uint32_t dead_mask, JobReport& report, telemetry::Trace* trace,
      telemetry::Trace::SpanId pass_span);
  void run_shard_chunks(int shard_idx, Shard& shard, const SlotRange& range,
                        const std::vector<std::size_t>& chunks,
                        std::span<const std::span<const float>> workers,
                        std::span<float> result, const JobParams& params,
                        util::Rng& rng, switchml::SessionStats& stats,
                        fault::FaultEngine* engine, std::uint32_t dead_mask,
                        telemetry::Trace* trace,
                        telemetry::Trace::SpanId parent);
  /// Stage 1 of the wave pipeline: packs wave `wave_index`'s packets into
  /// `bank`, drawing the add loss schedule AND pre-drawing the wave's
  /// collect schedule from the task rng — in the serial protocol's exact
  /// order (add_k then collect_k), so the pipelined global draw sequence is
  /// identical to the serial path's. A mid-add kill fault flushes the
  /// partially packed bank (the corpse keeps what "arrived") and throws; on
  /// add retransmit exhaustion the bank is marked failed and the collect
  /// schedule is NOT drawn (the serial path dies before reaching it).
  void encode_wave(WaveBank& bank, std::size_t wave_index, std::size_t base,
                   std::size_t wave_end, int shard_idx, Shard& shard,
                   const SlotRange& range,
                   const std::vector<std::size_t>& chunks,
                   std::span<const std::span<const float>> workers,
                   std::size_t result_n, const JobParams& params,
                   util::Rng& rng, switchml::SessionStats& stats,
                   std::uint32_t dead_mask, WaveScratch& scratch);
  /// The pipelined wave loop (two-stage software pipeline over ping-pong
  /// WaveBanks). Bit-identical to the serial loop in run_shard_chunks —
  /// pinned by test_cluster_pipeline.
  void run_wave_pipeline(int shard_idx, Shard& shard, const SlotRange& range,
                         const std::vector<std::size_t>& chunks,
                         std::span<const std::span<const float>> workers,
                         std::span<float> result, const JobParams& params,
                         util::Rng& rng, switchml::SessionStats& stats,
                         std::uint32_t dead_mask, telemetry::Trace* trace,
                         telemetry::Trace::SpanId shard_span,
                         WaveScratch& scratch, double straggle_ms);
  /// Claims a one-shot kill fault for (shard, phase, wave); true when the
  /// caller should die now (throw ShardDeadError).
  bool fire_kill_fault(int shard, FaultPhase phase, std::size_t wave)
      FPISA_EXCLUDES(fault_mu_);
  /// Non-claiming probe: does an unfired kill fault target (shard, phase,
  /// wave)? Lets the pipeline's encode stage predict a wave's injected
  /// death without consuming the one-shot claim.
  bool peek_kill_fault(int shard, FaultPhase phase, std::size_t wave) const
      FPISA_EXCLUDES(fault_mu_);
  /// Persistent straggler injection: extra wall time per wave for `shard`.
  double slowdown_ms(int shard) const;
  /// Draws the per-packet loss schedule (identical order to the
  /// per-packet protocol) and queues every delivered copy into `q`;
  /// returns false when the packet exhausts its retransmit budget.
  static bool queue_add(std::uint16_t slot, std::uint8_t worker,
                        std::span<const std::uint32_t> values,
                        const JobParams& params, util::Rng& rng,
                        switchml::SessionStats& stats, PacketQueue& q);
  /// Applies the queued wave under ONE shard-mutex hold.
  static void flush_wave(Shard& shard, PacketQueue& q);
  /// Guarded twin of queue_add: every delivered copy routes through the
  /// fault engine (corruption / duplication / stale capture) and carries
  /// the slot's epoch stamp + payload checksum; a corrupted delivery does
  /// not count as delivered, so the retransmit loop keeps going.
  static bool queue_add_guarded(std::uint16_t slot, std::uint8_t worker,
                                std::span<const std::uint32_t> values,
                                std::uint32_t stamp, const JobParams& params,
                                util::Rng& rng, switchml::SessionStats& stats,
                                fault::FaultEngine& engine);
  /// Applies the engine's pending (possibly reordered) wave through
  /// add_batch_guarded under one shard-mutex hold; rejected packets fold
  /// into stats.faults.
  static void flush_wave_guarded(Shard& shard, switchml::SessionStats& stats,
                                 fault::FaultEngine& engine);
  /// Re-reads the range's slot stamps (and the switch generation) into the
  /// scratch mirror, under the shard mutex.
  static void resync_shard_stamps(Shard& shard, const SlotRange& range,
                                  WaveScratch& scratch);
  /// Post-wave recovery for the guarded protocol: replays the wave from
  /// host-held gradients while the switch generation disagrees with the
  /// mirror (state loss), then probes the wave's dedup bitmaps for a
  /// worker that reached NO slot — thrown as WorkerDeadError. Replay
  /// budget exhaustion becomes a ShardDeadError so it composes with shard
  /// failover.
  void recover_shard_wave(int shard_idx, Shard& shard, const SlotRange& range,
                          const std::vector<std::size_t>& chunks,
                          std::span<const std::span<const float>> workers,
                          std::size_t base, std::size_t wave_end,
                          std::size_t wave_index,
                          switchml::SessionStats& stats,
                          fault::FaultEngine& engine, std::uint32_t dead_mask,
                          WaveScratch& scratch);
  /// Batched collect: draws the per-slot read/reset loss schedules in the
  /// per-packet order, then drains the wave's slots through one compiled
  /// read_and_reset_batch call under a single shard-mutex hold. Throws
  /// exactly where (and with the register state) the per-slot loop would.
  void collect_wave(int shard_idx, Shard& shard, const SlotRange& range,
                    const std::vector<std::size_t>& chunks, std::size_t base,
                    std::size_t wave_end, std::span<float> result,
                    const JobParams& params, util::Rng& rng,
                    switchml::SessionStats& stats, WaveScratch& scratch);
  /// Applies a PRE-DRAWN collect schedule (collect_wave's tail; also the
  /// pipeline's stage 2): one read_and_reset_batch over the cleared prefix,
  /// throws on schedule failure, then scatters the wave into `result`.
  void apply_collect(int shard_idx, Shard& shard, const SlotRange& range,
                     const std::vector<std::size_t>& chunks, std::size_t base,
                     std::size_t wave_end, std::span<float> result,
                     const switchml::CollectSchedule& sched,
                     WaveScratch& scratch);
  /// Control-plane cleanup: clears every slot of `range` so a failed job
  /// cannot leak register state or dedup-bitmap bits to the range's next
  /// tenant.
  void scrub_range(Shard& shard, const SlotRange& range);

  ClusterOptions opts_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Per-shard persistent workers (kWorkers dispatch): worker s owns
  // shards_[s]'s pass work; a pass posts one lock-free mailbox ticket per
  // ACTIVE shard and joins on an atomic pending counter. Empty under
  // inline dispatch. (Replaces the old shared deque + condvar broadcast,
  // which woke every worker and contended one mutex on every pass.)
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  bool inline_dispatch_ = false;
  /// Pass-completion doorbell: the LAST shard of any pass bumps the epoch
  /// and notifies; joiners wait here (re-checking their own pending
  /// counter), so the final wake never touches a pass's dying stack frame.
  std::atomic<std::uint64_t> pass_epoch_{0};

  // Bounded job-runner pool (submitted jobs' control loops). Kept separate
  // from the shard workers because a job's control loop BLOCKS on its
  // shard tasks — running it on a shard worker could deadlock the shard
  // work it waits for. Queued submissions live in the weighted-deficit
  // class scheduler (replacing the old single FIFO deque): with QoS off
  // every job lands in one class and pickup degenerates to exact FIFO;
  // with QoS on, runners drain classes by priority with per-cycle credits
  // so training overtakes queued telemetry without starving it.
  struct QueuedJob {
    std::packaged_task<JobReport()> task;
    std::string tenant;
  };
  std::vector<std::thread> job_pool_;
  /// mutable: const snapshot accessors lock it. Rank kJobQueue == kStats:
  /// job_mu_ and stats_mu_ must never nest, in either direction.
  mutable util::OrderedMutex job_mu_{util::lock_rank::kJobQueue};
  qos::WeightedScheduler<QueuedJob> job_sched_ FPISA_GUARDED_BY(job_mu_);
  /// Admission books (token buckets + per-tenant queued counts), guarded
  /// by job_mu_ like the scheduler it gates.
  qos::AdmissionControl admission_ FPISA_GUARDED_BY(job_mu_);
  bool qos_enabled_ = false;
  /// condition_variable_any: waits on util::UniqueLock, so the cv's
  /// unlock/relock rides the rank checker's bookkeeping.
  std::condition_variable_any job_cv_;
  /// kBlock backpressure: blocked submitters wait here; runners notify
  /// after every dequeue (queue space freed).
  std::condition_variable_any admission_cv_;
  bool stopping_jobs_ FPISA_GUARDED_BY(job_mu_) = false;
  std::atomic<std::uint64_t> running_jobs_{0};
  std::atomic<std::uint64_t> peak_jobs_{0};

  // Slot-range allocation: jobs acquire ranges in ascending shard order
  // (the same order for every job), so concurrent tenants cannot deadlock
  // waiting on each other's ranges.
  util::OrderedMutex alloc_mu_{util::lock_rank::kAlloc};
  std::condition_variable_any alloc_cv_;

  // Telemetry: stable registry handles (resolved once at construction) and
  // the optional attached trace. Wave phase time lives ONLY in the
  // registry's per-shard histograms — phase_breakdown() sums them back.
  void init_metrics();
  std::string svc_id_;  ///< "svc" label value for this service instance
  std::vector<std::array<telemetry::Histogram*, 2>>
      m_shard_phase_;  ///< [shard][0]=add, [1]=collect
  telemetry::Gauge* m_queue_depth_ = nullptr;    ///< job-runner queue
  telemetry::Counter* m_shard_deaths_ = nullptr;
  telemetry::Counter* m_rerouted_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  telemetry::Counter* m_jobs_[3] = {};  ///< [0]=completed [1]=failed [2]=rejected
  /// QoS scheduler/admission series, indexed by Priority:
  /// qos_admission_queue_depth gauges, qos_jobs_admitted_total and
  /// qos_sched_picks_total counters.
  telemetry::Gauge* m_qos_class_depth_[qos::kNumPriorities] = {};
  telemetry::Counter* m_qos_admitted_[qos::kNumPriorities] = {};
  telemetry::Counter* m_qos_picks_[qos::kNumPriorities] = {};
  /// qos_jobs_rejected_total by reason: [0]=rate_limit [1]=queue_full
  /// [2]=deadline.
  telemetry::Counter* m_qos_rejects_[3] = {};
  /// Per-shard mailbox counters as gauges (enqueued / wakeups / spurious),
  /// refreshed after every pass join under kWorkers dispatch — the PR 8
  /// mailbox_stats() surface, now scrapeable like every other layer.
  std::vector<std::array<telemetry::Gauge*, 3>> m_mailbox_;
  /// Fault-recovery events: [0]=epoch_bumps, [1]=workers_declared_dead,
  /// [2]=waves_replayed (cluster_fault_* counters; wire-level rejections
  /// are counted by the switch's own fpisa_switch_* counters).
  telemetry::Counter* m_fault_[3] = {};
  telemetry::Histogram* m_job_wall_ = nullptr;
  std::atomic<telemetry::Trace*> trace_{nullptr};
  std::atomic<std::size_t> trace_parent_{telemetry::Trace::kNone};

  // Shard liveness + one-shot fault claiming (mutable: the pipeline's
  // const peek probes the table too).
  ShardHealth health_;
  mutable util::OrderedMutex fault_mu_{util::lock_rank::kFaultTable};
  /// parallel to opts_.failover.faults
  std::vector<bool> fault_fired_ FPISA_GUARDED_BY(fault_mu_);

  // Cumulative accounting. The tenant map uses std::less<> so the
  // zero-copy JobView path (string_view tenants) looks up without
  // materializing a temporary std::string.
  struct TenantAccount {
    switchml::SessionStats stats;
    SloAccumulator slo;
  };
  /// Find-or-create a tenant's books; heterogeneous lookup (a string key
  /// materializes only for a brand-new tenant). Caller holds stats_mu_.
  TenantAccount& tenant_account_locked(std::string_view tenant)
      FPISA_REQUIRES(stats_mu_);
  /// Rank kStats == kJobQueue: never nests with job_mu_. Shard::mu (rank
  /// kShard) legally nests beneath it.
  mutable util::OrderedMutex stats_mu_{util::lock_rank::kStats};
  std::map<std::string, TenantAccount, std::less<>> tenant_stats_
      FPISA_GUARDED_BY(stats_mu_);
  /// Job-level failover events (shard deaths, re-routed chunks, retry
  /// passes). Fabric events, not any one shard's traffic — kept here so
  /// total_stats() and the per-tenant sums agree on the failover counters
  /// while Shard::stats stays pure per-shard protocol traffic.
  switchml::SessionStats fabric_stats_ FPISA_GUARDED_BY(stats_mu_);
  std::uint64_t jobs_completed_ FPISA_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t jobs_failed_ FPISA_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t jobs_rejected_ FPISA_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t next_job_id_ FPISA_GUARDED_BY(stats_mu_) = 0;
};

/// Modeled wall-clock seconds for a job whose packets are spread over
/// parallel shard ingress pipes: each shard's packets serialize through a
/// dedicated net::Link at `gbps`, shards drain concurrently (net::EventSim
/// ordering), and the job completes when the slowest shard drains. This is
/// the paper's emulation argument at rack scale: the switches run at line
/// rate, so aggregate capacity grows with the shard count. Degenerate
/// inputs (empty `per_shard`, all-zero packet counts, non-positive rate or
/// packet size) model no traffic and return 0 rather than NaN/inf.
double modeled_shard_parallel_seconds(
    const std::vector<switchml::SessionStats>& per_shard,
    std::size_t bytes_per_packet, double gbps, double latency_us);

}  // namespace fpisa::cluster
