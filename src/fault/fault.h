// Deterministic Byzantine-wire fault injection for the FPISA fabric.
//
// The loss model built into the session/cluster protocols covers clean
// packet drops only. The FaultEngine layers the rest of the wire-fault
// taxonomy on top, all drawn from a dedicated seeded RNG stream so every
// failure replays exactly:
//
//   - payload corruption: one bit of a delivered copy is flipped *after*
//     the checksum was computed over the clean payload, so the switch-side
//     guard detects the mismatch and the host retransmits;
//   - duplicate delivery: an extra copy of a delivered packet is queued in
//     the same wave batch (absorbed by the dedup bitmap);
//   - stale duplicates: a copy is captured as a "ghost" and re-delivered
//     in a LATER wave, after round-robin slot reuse has reset and
//     re-occupied its slot — only the epoch stamp tells it apart from a
//     fresh contribution;
//   - packet reordering: the pending wave batch is shuffled with adjacent
//     swaps across *different* slots only, which provably cannot change
//     any per-slot arrival order (and therefore cannot change results);
//   - worker death: one worker goes silent from a chosen wave onward;
//   - switch state loss: the whole register file is wiped once, mid-job.
//
// The engine owns injection only; detection and recovery live with the
// protocol layers (epoch/generation stamps + checksum guard on the
// switch, shadow-buffer wave replay + dead-worker policy on the host).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fpisa::fault {

// What to do when a worker stops contributing mid-job.
enum class DeadWorkerPolicy {
  kAbort,    // throw WorkerDeadError; the job fails with books intact
  kDegrade,  // finish over the survivors (kMean divides by survivor count)
};

// One knob surface for every layer (session, cluster, all four collective
// backends). Rates are per delivered copy; death/wipe are scheduled events.
struct FaultOptions {
  bool enabled = false;     // master switch: off = exact legacy datapath
  std::uint64_t seed = 1;   // fault RNG stream (independent of loss_seed)
  double corrupt_rate = 0.0;    // P(flip one payload bit in a delivery)
  double reorder_rate = 0.0;    // P(adjacent cross-slot swap per boundary)
  double dup_rate = 0.0;        // P(queue an immediate duplicate)
  double stale_dup_rate = 0.0;  // P(capture a ghost for a later wave)
  int dead_worker = -1;             // worker index, or -1 for none
  std::size_t dead_worker_wave = 0;  // first wave the worker misses
  DeadWorkerPolicy dead_worker_policy = DeadWorkerPolicy::kAbort;
  bool wipe_switch = false;   // wipe all switch registers once...
  std::size_t wipe_wave = 0;  // ...after this wave's adds are applied
  int max_wave_replays = 4;   // replay budget per recovery episode
};

// Injection/recovery event counts, embedded in SessionStats and merged
// with the same +=/-= delta protocol the rest of the stats use.
struct FaultCounters {
  std::uint64_t corrupt_rejected = 0;     // checksum-failed copies dropped
  std::uint64_t stale_dups_rejected = 0;  // stamp-mismatched copies dropped
  std::uint64_t epoch_bumps = 0;          // mirror resyncs after wipe/scrub
  std::uint64_t workers_declared_dead = 0;
  std::uint64_t waves_replayed = 0;

  FaultCounters& operator+=(const FaultCounters& o) {
    corrupt_rejected += o.corrupt_rejected;
    stale_dups_rejected += o.stale_dups_rejected;
    epoch_bumps += o.epoch_bumps;
    workers_declared_dead += o.workers_declared_dead;
    waves_replayed += o.waves_replayed;
    return *this;
  }
  FaultCounters& operator-=(const FaultCounters& o) {
    corrupt_rejected -= o.corrupt_rejected;
    stale_dups_rejected -= o.stale_dups_rejected;
    epoch_bumps -= o.epoch_bumps;
    workers_declared_dead -= o.workers_declared_dead;
    waves_replayed -= o.waves_replayed;
    return *this;
  }
};

// A worker stopped contributing and the policy is kAbort (or every worker
// is dead under kDegrade). Carries the worker and the wave where its
// absence was detected, like ShardDeadError carries the shard.
class WorkerDeadError : public std::runtime_error {
 public:
  WorkerDeadError(int worker, std::size_t wave)
      : std::runtime_error("worker " + std::to_string(worker) +
                           " dead (no contribution by wave " +
                           std::to_string(wave) + ")"),
        worker_(worker),
        wave_(wave) {}
  int worker() const { return worker_; }
  std::size_t wave() const { return wave_; }

 private:
  int worker_;
  std::size_t wave_;
};

// Per-(job, shard, pass) deterministic injector. The host protocol feeds
// every delivered copy through deliver(); the engine buffers the wave
// batch (so it can corrupt, duplicate, reorder, and hold back ghosts) and
// the protocol flushes the arrays through the switch's guarded add path.
class FaultEngine {
 public:
  // stream_seed identifies this engine's RNG stream (derive it per shard
  // and pass so replays are independent); lanes is the payload width of
  // every delivered copy.
  FaultEngine(const FaultOptions& opts, std::uint64_t stream_seed,
              int lanes);

  const FaultOptions& options() const { return opts_; }

  // True if `worker` injects nothing from this wave on.
  bool worker_silent(int worker, std::size_t wave) const {
    return opts_.dead_worker == worker && wave >= opts_.dead_worker_wave;
  }

  // One-shot: true exactly once, after the adds of wave `wave` when the
  // wipe is scheduled. Survives a degrade restart (at most one wipe per
  // engine lifetime).
  bool should_wipe(std::size_t wave) {
    if (!opts_.wipe_switch || wipe_fired_ || wave < opts_.wipe_wave) {
      return false;
    }
    wipe_fired_ = true;
    return true;
  }

  // Start a wave: ghosts captured in earlier waves are released to the
  // FRONT of this wave's pending batch (they are "in flight" longer than
  // one wave, landing after their slot was reused).
  void begin_wave(std::size_t wave);

  // Inject one delivered copy into the pending batch. Returns false when
  // this copy was corrupted in flight — the switch guard will reject it,
  // so the caller must treat the attempt as undelivered (keep
  // retransmitting, no ack possible).
  bool deliver(std::uint16_t slot, std::uint8_t worker, std::uint32_t stamp,
               std::span<const std::uint32_t> values);

  // Reorder the pending batch: adjacent swaps across different slots only,
  // preserving per-slot FIFO order (results stay bit-identical).
  void shuffle_pending();

  // Flat pending-batch accessors; entry i's payload is
  // values()[i*lanes .. i*lanes+lanes).
  std::size_t pending() const { return slots_.size(); }
  std::span<const std::uint16_t> slots() const { return slots_; }
  std::span<const std::uint8_t> workers() const { return workers_; }
  std::span<const std::uint32_t> stamps() const { return stamps_; }
  std::span<const std::uint16_t> checksums() const { return checksums_; }
  std::span<const std::uint32_t> values() const { return values_; }

  void clear_pending();
  // Forget captured ghosts (degrade restart: the replayed job must not
  // receive stale copies from the aborted attempt).
  void drop_ghosts() { ghosts_.clear(); }

 private:
  struct Ghost {
    std::uint16_t slot;
    std::uint8_t worker;
    std::uint32_t stamp;
    std::uint16_t checksum;
    std::vector<std::uint32_t> values;
    std::size_t captured_wave;
  };

  void push(std::uint16_t slot, std::uint8_t worker, std::uint32_t stamp,
            std::uint16_t checksum, std::span<const std::uint32_t> values);

  FaultOptions opts_;
  util::Rng rng_;
  int lanes_;
  std::size_t wave_ = 0;
  bool wipe_fired_ = false;

  std::vector<std::uint16_t> slots_;
  std::vector<std::uint8_t> workers_;
  std::vector<std::uint32_t> stamps_;
  std::vector<std::uint16_t> checksums_;
  std::vector<std::uint32_t> values_;
  std::vector<Ghost> ghosts_;
};

// A reproducible chaos scenario expanded from one seed. The chaos soak
// test and example_chaos_demo draw through this SAME function, so a seed
// printed by a failing soak run replays byte-identically under the demo
// (`example_chaos_demo --seed N`). Even seeds exercise a single-switch
// session, odd seeds the multi-shard cluster fabric.
struct ChaosMix {
  bool cluster = false;    // odd seeds: run through the cluster fabric
  int num_workers = 4;     // worker views in the job (3..5)
  int num_shards = 2;      // cluster topology (ignored by sessions)
  double loss_rate = 0.0;  // clean-drop rate for the protocol loss model
  FaultOptions fault;      // the injected fault schedule
};
ChaosMix draw_chaos_mix(std::uint64_t seed);

// Parses a demo-facing fault-mix spec like
//   "corrupt=0.2,reorder=0.5,dup=0.1,stale=0.3,loss=0.1,wipe=1,dead=2,
//    dead_wave=1,policy=degrade"
// into `fault` (setting fault.enabled) and, for the `loss` key, into
// *loss_rate. Unmentioned knobs keep their current values. Returns false
// on an unknown key or malformed value.
bool parse_fault_mix(const std::string& spec, FaultOptions& fault,
                     double* loss_rate);

}  // namespace fpisa::fault
