#include "fault/fault.h"

#include <utility>

#include "pisa/fpisa_program.h"

namespace fpisa::fault {

FaultEngine::FaultEngine(const FaultOptions& opts, std::uint64_t stream_seed,
                         int lanes)
    : opts_(opts), rng_(stream_seed), lanes_(lanes) {}

void FaultEngine::begin_wave(std::size_t wave) {
  wave_ = wave;
  // Ghosts captured before this wave land now, ahead of the wave's fresh
  // traffic: by this point their slot has been reset (epoch bumped) and
  // reused, so only the stamp distinguishes them from real contributions.
  std::size_t kept = 0;
  for (auto& g : ghosts_) {
    if (g.captured_wave < wave) {
      push(g.slot, g.worker, g.stamp, g.checksum, g.values);
    } else {
      ghosts_[kept++] = std::move(g);
    }
  }
  ghosts_.resize(kept);
}

bool FaultEngine::deliver(std::uint16_t slot, std::uint8_t worker,
                          std::uint32_t stamp,
                          std::span<const std::uint32_t> values) {
  // Checksum over the clean payload first: a bit flipped in flight is
  // exactly what the switch-side guard is meant to catch.
  const std::uint16_t cs = pisa::fpisa_checksum(slot, worker, stamp, values);
  const bool corrupted = rng_.next_double() < opts_.corrupt_rate;
  push(slot, worker, stamp, cs, values);
  if (corrupted) {
    const std::size_t lane = values.size() > 1
                                 ? static_cast<std::size_t>(
                                       rng_.uniform_int(
                                           0, static_cast<int>(values.size()) -
                                                  1))
                                 : 0;
    const int bit = rng_.uniform_int(0, 31);
    values_[values_.size() - values.size() + lane] ^= (1u << bit);
    return false;
  }
  if (rng_.next_double() < opts_.dup_rate) {
    // Immediate duplicate in the same wave: the dedup bitmap absorbs it.
    push(slot, worker, stamp, cs, values);
  }
  if (rng_.next_double() < opts_.stale_dup_rate) {
    // Capture a ghost: this copy is "still in flight" and will land in a
    // later wave, after round-robin slot reuse.
    ghosts_.push_back(Ghost{slot, worker, stamp, cs,
                            std::vector<std::uint32_t>(values.begin(),
                                                       values.end()),
                            wave_});
  }
  return true;
}

void FaultEngine::shuffle_pending() {
  if (opts_.reorder_rate <= 0.0 || slots_.size() < 2) return;
  // Adjacent swaps across DIFFERENT slots only. Per-slot relative order is
  // invariant (a same-slot pair can never be directly swapped), so every
  // slot's register sees the same arrival sequence and results stay
  // bit-identical to the unshuffled batch.
  for (std::size_t i = 0; i + 1 < slots_.size(); ++i) {
    if (slots_[i] == slots_[i + 1]) continue;
    if (rng_.next_double() >= opts_.reorder_rate) continue;
    std::swap(slots_[i], slots_[i + 1]);
    std::swap(workers_[i], workers_[i + 1]);
    std::swap(stamps_[i], stamps_[i + 1]);
    std::swap(checksums_[i], checksums_[i + 1]);
    const std::size_t a = i * static_cast<std::size_t>(lanes_);
    const std::size_t b = (i + 1) * static_cast<std::size_t>(lanes_);
    for (int l = 0; l < lanes_; ++l) {
      std::swap(values_[a + static_cast<std::size_t>(l)],
                values_[b + static_cast<std::size_t>(l)]);
    }
  }
}

void FaultEngine::clear_pending() {
  slots_.clear();
  workers_.clear();
  stamps_.clear();
  checksums_.clear();
  values_.clear();
}

void FaultEngine::push(std::uint16_t slot, std::uint8_t worker,
                       std::uint32_t stamp, std::uint16_t checksum,
                       std::span<const std::uint32_t> values) {
  slots_.push_back(slot);
  workers_.push_back(worker);
  stamps_.push_back(stamp);
  checksums_.push_back(checksum);
  values_.insert(values_.end(), values.begin(), values.end());
}

ChaosMix draw_chaos_mix(std::uint64_t seed) {
  // The mix-drawing stream is distinct from the engine stream (fault.seed)
  // so adding a knob here never perturbs the injected schedules of other
  // seeds' engines.
  util::Rng rng(0xC4A05ULL ^ (seed * 0x9e3779b97f4a7c15ULL));
  ChaosMix mix;
  mix.cluster = (seed % 2) == 1;
  mix.num_workers = 3 + static_cast<int>(rng.next_below(3));
  mix.num_shards = 2 + static_cast<int>(rng.next_below(2));
  mix.loss_rate = 0.3 * rng.next_double();
  mix.fault.enabled = true;
  mix.fault.seed = seed + 1;
  // Rates are capped so retransmit exhaustion stays astronomically
  // unlikely under the default 64-deep budget: every run is recoverable
  // unless a kAbort worker death makes it unrecoverable by design.
  mix.fault.corrupt_rate = 0.3 * rng.next_double();
  mix.fault.reorder_rate = 0.5 * rng.next_double();
  mix.fault.dup_rate = 0.3 * rng.next_double();
  mix.fault.stale_dup_rate = 0.3 * rng.next_double();
  if (rng.next_double() < 0.3) {
    mix.fault.wipe_switch = true;
    mix.fault.wipe_wave = rng.next_below(3);
  }
  if (rng.next_double() < 0.3) {
    mix.fault.dead_worker = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(mix.num_workers)));
    // Cluster shards index waves locally, so only wave 0 is guaranteed to
    // exist on every shard; sessions can lose a worker mid-job.
    mix.fault.dead_worker_wave = mix.cluster ? 0 : rng.next_below(2);
    mix.fault.dead_worker_policy = rng.next_double() < 0.5
                                       ? DeadWorkerPolicy::kAbort
                                       : DeadWorkerPolicy::kDegrade;
  }
  return mix;
}

bool parse_fault_mix(const std::string& spec, FaultOptions& fault,
                     double* loss_rate) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string kv = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    try {
      fault.enabled = true;
      if (key == "corrupt") {
        fault.corrupt_rate = std::stod(val);
      } else if (key == "reorder") {
        fault.reorder_rate = std::stod(val);
      } else if (key == "dup") {
        fault.dup_rate = std::stod(val);
      } else if (key == "stale") {
        fault.stale_dup_rate = std::stod(val);
      } else if (key == "loss") {
        if (loss_rate != nullptr) *loss_rate = std::stod(val);
      } else if (key == "wipe") {
        fault.wipe_switch = true;
        fault.wipe_wave = std::stoul(val);
      } else if (key == "dead") {
        fault.dead_worker = std::stoi(val);
      } else if (key == "dead_wave") {
        fault.dead_worker_wave = std::stoul(val);
      } else if (key == "policy") {
        if (val == "abort") {
          fault.dead_worker_policy = DeadWorkerPolicy::kAbort;
        } else if (val == "degrade") {
          fault.dead_worker_policy = DeadWorkerPolicy::kDegrade;
        } else {
          return false;
        }
      } else {
        return false;
      }
    } catch (const std::exception&) {
      return false;  // std::stod / std::stoul rejected the value
    }
  }
  return true;
}

}  // namespace fpisa::fault
